package cecsan

import (
	"strings"
	"testing"

	"cecsan/prog"
)

func overflowProgram() *prog.Program {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(16)
	n := f.Libc("rand")
	off := f.Add(f.Bin(prog.BinAnd, n, f.Const(0)), f.Const(16))
	f.Store(f.OffsetPtrReg(buf, off), 0, f.Const(1), prog.Char())
	f.RetVoid()
	return pb.MustBuild()
}

func TestRunDefaultsToCECSan(t *testing.T) {
	res, err := Run(overflowProgram(), Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("overflow not detected under default config")
	}
	if res.Violation.Kind != KindOOBWrite {
		t.Fatalf("kind = %v, want %v", res.Violation.Kind, KindOOBWrite)
	}
}

func TestRunEverySanitizerName(t *testing.T) {
	names := SanitizerNames()
	if len(names) != 8 {
		t.Fatalf("SanitizerNames() = %v, want 8 entries", names)
	}
	for _, name := range names {
		res, err := Run(overflowProgram(), Config{Sanitizer: name})
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		wantDetect := name != Native
		if got := res.Violation != nil; got != wantDetect {
			t.Errorf("%s: detected=%v, want %v", name, got, wantDetect)
		}
	}
}

func TestRunUnknownSanitizer(t *testing.T) {
	if _, err := Run(overflowProgram(), Config{Sanitizer: "Valgrind"}); err == nil {
		t.Fatal("unknown sanitizer accepted")
	}
}

func TestCECSanOptionOverride(t *testing.T) {
	// Sub-object overflow detected only when SubObject is on.
	st := prog.StructOf("S",
		prog.FieldSpec{Name: "buf", Type: prog.ArrayOf(prog.Char(), 8)},
		prog.FieldSpec{Name: "fp", Type: prog.VoidPtr()},
	)
	pb := prog.NewProgram()
	pb.GlobalBytes("src", make([]byte, 16))
	f := pb.Function("main", 0)
	obj := f.MallocType(st)
	f.Libc("memcpy", f.FieldPtr(obj, st, "buf"), f.GlobalAddr("src"), f.Const(16))
	f.RetVoid()
	p := pb.MustBuild()

	on := DefaultCECSanOptions()
	res, err := Run(p, Config{Sanitizer: CECSan, CECSan: &on})
	if err != nil || res.Violation == nil {
		t.Fatalf("sub-object on: err=%v res=%+v", err, res)
	}
	off := DefaultCECSanOptions()
	off.SubObject = false
	res2, err := Run(p, Config{Sanitizer: CECSan, CECSan: &off})
	if err != nil || res2.Violation != nil {
		t.Fatalf("sub-object off: err=%v violation=%v", err, res2.Violation)
	}
}

func TestMachineInputsAndOutput(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.MallocBytes(32)
	n := f.Libc("fgets", buf, f.Const(32))
	f.Libc("print_int", n)
	f.Libc("print_str", buf)
	f.RetVoid()
	p := pb.MustBuild()

	m, err := NewMachine(p, Config{Inputs: [][]byte{[]byte("hello-harness")}})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if name := m.SanitizerName(); name != CECSan {
		t.Fatalf("SanitizerName = %q", name)
	}
	res := m.Run()
	if !res.Ok() {
		t.Fatalf("run failed: %+v", res)
	}
	out := m.Output()
	if len(out) != 2 || out[0] != "13" || out[1] != "hello-harness" {
		t.Fatalf("output = %q", out)
	}
	if m.CoreRuntime() == nil {
		t.Fatal("CoreRuntime() nil for CECSan machine")
	}
}

func TestInstrumentExposesCompiledForm(t *testing.T) {
	ip, err := Instrument(overflowProgram(), CECSan)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	dump := ip.Funcs["main"].Dump()
	if !strings.Contains(dump, "check.w") {
		t.Fatalf("instrumented dump lacks checks:\n%s", dump)
	}
}

func TestMaxInstructionsConfig(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	f.While(func() prog.Reg { return f.Const(1) }, func() {})
	p := pb.MustBuild()
	res, err := Run(p, Config{Sanitizer: Native, MaxInstructions: 5000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Err == nil {
		t.Fatal("instruction budget not enforced")
	}
}
