package fuzz

import (
	"encoding/json"
	"sync"
	"testing"

	"cecsan/csrc"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// TestGenerateDeterministic: same seed, same case — source, inputs, oracle.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Source != b.Source {
			t.Fatalf("seed %d: sources differ:\n%s\n----\n%s", seed, a.Source, b.Source)
		}
		if len(a.Inputs) != len(b.Inputs) {
			t.Fatalf("seed %d: input counts differ", seed)
		}
		aj, _ := json.Marshal(a.Oracle)
		bj, _ := json.Marshal(b.Oracle)
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: oracles differ: %s vs %s", seed, aj, bj)
		}
	}
}

// TestGenerateCompiles: every generated program is valid csrc.
func TestGenerateCompiles(t *testing.T) {
	for seed := uint64(1); seed <= 300; seed++ {
		c := Generate(seed)
		if _, err := csrc.Compile(c.Source); err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, c.Source)
		}
	}
}

// TestShapeCoverage: a modest seed range exercises every taxonomy entry,
// so no shape is dead code behind an unsatisfiable applicability predicate.
func TestShapeCoverage(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(1); seed <= 5000; seed++ {
		c := Generate(seed)
		if c.Oracle.Injected {
			seen[c.Oracle.Shape] = true
		}
	}
	for _, name := range ShapeNames() {
		if !seen[name] {
			t.Errorf("shape %s never generated in 5000 seeds", name)
		}
	}
}

// TestCampaignClean runs a small campaign and demands zero findings: every
// outcome across all eight sanitizers matches its oracle expectation.
func TestCampaignClean(t *testing.T) {
	count := 120
	if testing.Short() {
		count = 30
	}
	r, err := NewRunner(Config{Seed: 7, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("finding: tool=%s shape=%s reason=%s seed=%d detail=%q\n%s",
			f.Tool, f.Shape, f.Reason, f.Seed, f.Detail, f.Source)
	}
	if rep.Injected == 0 || rep.CleanN == 0 {
		t.Errorf("campaign degenerate: %d injected, %d clean", rep.Injected, rep.CleanN)
	}
}

// TestCampaignCleanHardened runs the same campaign with the CECSan family
// swapped for its temporally hardened variants. Beyond zero findings, the
// hardened CECSan column must have no documented misses at all: with both
// reuse windows closed its oracle predicts detection for every injected
// shape, so a single miss_doc cell would mean the swap silently failed.
func TestCampaignCleanHardened(t *testing.T) {
	count := 120
	if testing.Short() {
		count = 30
	}
	r, err := NewRunner(Config{Seed: 7, Count: count, Hardened: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("finding: tool=%s shape=%s reason=%s seed=%d detail=%q\n%s",
			f.Tool, f.Shape, f.Reason, f.Seed, f.Detail, f.Source)
	}
	for _, tr := range rep.Tools {
		if tr.Tool == string(sanitizers.CECSanHardened) {
			if tr.Detected != rep.Injected || tr.MissDoc != 0 {
				t.Errorf("%s: detected %d / miss_doc %d, want %d / 0",
					tr.Tool, tr.Detected, tr.MissDoc, rep.Injected)
			}
		}
	}
}

// TestMinimize: the minimizer strips benign padding from a reproducer and
// the shrunk program still triggers the same classification.
func TestMinimize(t *testing.T) {
	// Find an injected case with at least one removable op.
	var c *Case
	for seed := uint64(1); seed < 500; seed++ {
		cand := Generate(seed)
		if cand.Oracle.Injected && len(cand.ops) > 2 {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no multi-op injected case in seed range")
	}
	compiles := func(cc *Case) bool {
		_, err := csrc.Compile(cc.Source)
		return err == nil
	}
	min := Minimize(c, compiles)
	if min == nil {
		t.Fatal("minimizer removed nothing from a padded case")
	}
	if len(min.ops) >= len(c.ops) {
		t.Fatalf("minimized case has %d ops, original %d", len(min.ops), len(c.ops))
	}
	if !compiles(min) {
		t.Fatalf("minimized case does not compile:\n%s", min.Source)
	}
	// The essential (bug) op must survive.
	found := false
	for _, o := range min.ops {
		if o.essential {
			found = true
		}
	}
	if !found {
		t.Error("minimizer dropped the essential bug op")
	}
}

// TestFingerprintProperty is the prog.Fingerprint property test: across a
// large seed sweep, structurally distinct programs never share a
// fingerprint, and recompiling the same source reproduces it exactly (the
// engine cache and the minimizer both rely on that round trip). Source
// texts differing only in variable names legitimately collide — names
// don't survive compilation — so the collision check compares the
// compiled programs' dumps, not the source.
func TestFingerprintProperty(t *testing.T) {
	n := uint64(10000)
	if testing.Short() {
		n = 1000
	}
	seen := map[prog.Fingerprint]string{} // fingerprint -> IR dump
	for seed := uint64(1); seed <= n; seed++ {
		c := Generate(seed)
		p, err := csrc.Compile(c.Source)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fp := p.Fingerprint()
		dump := p.Dump()
		if prev, ok := seen[fp]; ok && prev != dump {
			t.Fatalf("fingerprint collision between distinct programs:\n%s\n----\n%s", prev, dump)
		}
		seen[fp] = dump
		// Round trip: recompiling the same source preserves the fingerprint.
		p2, err := csrc.Compile(c.Source)
		if err != nil {
			t.Fatalf("seed %d recompile: %v", seed, err)
		}
		if p2.Fingerprint() != fp {
			t.Fatalf("seed %d: recompiled fingerprint differs", seed)
		}
	}
}

// sharedRunner lazily builds one runner for the Go-native fuzz target, so
// engine caches persist across the fuzzing loop.
var (
	sharedOnce   sync.Once
	sharedRunner *Runner
)

func getSharedRunner(t testing.TB) *Runner {
	sharedOnce.Do(func() {
		r, err := NewRunner(Config{Seed: 1, Count: 0})
		if err != nil {
			t.Fatalf("runner: %v", err)
		}
		sharedRunner = r
	})
	return sharedRunner
}

// FuzzDifferential is the Go-native entry point: the fuzzing engine feeds
// seeds, each becomes one generated case run differentially across every
// sanitizer, and any oracle disagreement fails the target.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := getSharedRunner(t)
		findings := r.RunOne(seed)
		for _, fd := range findings {
			t.Errorf("finding: tool=%s shape=%s reason=%s detail=%q\n%s",
				fd.Tool, fd.Shape, fd.Reason, fd.Detail, fd.Source)
		}
	})
}
