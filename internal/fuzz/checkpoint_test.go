package fuzz

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"path/filepath"
	"testing"

	"cecsan/internal/checkpoint"
)

// TestCampaignCheckpointResume is the fuzz-side kill-resume proof: a
// checkpointed campaign's last mid-run snapshot (what would survive a
// kill -9 between chunks), resumed under a different worker count, must
// produce a report byte-identical to an uninterrupted run — findings,
// aggregates, fault cases and the case digest alike.
func TestCampaignCheckpointResume(t *testing.T) {
	cfg := Config{Seed: 7, Count: 150, FaultSeed: 3, Workers: 2}
	if testing.Short() {
		cfg.Count = 60
	}

	ref, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	if refRep.CaseDigest == "" {
		t.Fatal("reference campaign produced no case digest")
	}
	refJSON, err := json.Marshal(refRep)
	if err != nil {
		t.Fatal(err)
	}

	// A checkpointed run overwrites its snapshot after every chunk, so the
	// file left behind is the last between-chunks cut — mid-campaign, since
	// no snapshot is written once the final chunk lands.
	ckpt := filepath.Join(t.TempDir(), "fuzz.ckpt")
	every := cfg.Count / 3
	ckCfg := cfg
	ckCfg.CheckpointPath = ckpt
	ckCfg.CheckpointEvery = every
	ckRunner, err := NewRunner(ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	ckRep, err := ckRunner.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	ckJSON, err := json.Marshal(ckRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, ckJSON) {
		t.Fatalf("checkpointing changed the report:\n%s\nvs\n%s", ckJSON, refJSON)
	}

	var saved CampaignCheckpoint
	if err := checkpoint.Load(ckpt, checkpoint.KindFuzz, &saved); err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if saved.NextCase == 0 || saved.NextCase >= cfg.Count {
		t.Fatalf("snapshot not mid-campaign: cursor %d of %d", saved.NextCase, cfg.Count)
	}

	resCfg := cfg
	resCfg.Workers = 8
	resCfg.Resume = &saved
	resumed, err := NewRunner(resCfg)
	if err != nil {
		t.Fatal(err)
	}
	resRep, err := resumed.Campaign()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	resJSON, err := json.Marshal(resRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, resJSON) {
		t.Fatalf("resumed report diverged from uninterrupted run:\n%s\nvs\n%s", resJSON, refJSON)
	}
}

// TestCampaignResumeValidation: a snapshot resumed under the wrong campaign
// identity must fail loudly before any case runs.
func TestCampaignResumeValidation(t *testing.T) {
	base := Config{Seed: 7, Count: 60, FaultSeed: 3, Workers: 2}
	ckpt := filepath.Join(t.TempDir(), "fuzz.ckpt")
	cfg := base
	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = 20
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Campaign(); err != nil {
		t.Fatal(err)
	}
	var saved CampaignCheckpoint
	if err := checkpoint.Load(ckpt, checkpoint.KindFuzz, &saved); err != nil {
		t.Fatal(err)
	}

	mutate := []struct {
		name string
		mod  func(c *Config)
	}{
		{"wrong seed", func(c *Config) { c.Seed = 8 }},
		{"wrong fault seed", func(c *Config) { c.FaultSeed = 4 }},
		{"fault mode dropped", func(c *Config) { c.FaultSeed = 0 }},
		{"wrong count", func(c *Config) { c.Count = 61 }},
		{"hardened flipped", func(c *Config) { c.Hardened = true }},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			bad := base
			tc.mod(&bad)
			bad.Resume = &saved
			br, err := NewRunner(bad)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := br.Campaign(); err == nil {
				t.Fatal("resume must reject a mismatched checkpoint")
			}
		})
	}

	t.Run("cursor out of range", func(t *testing.T) {
		broken := saved
		broken.NextCase = base.Count + 1
		bad := base
		bad.Resume = &broken
		br, err := NewRunner(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := br.Campaign(); err == nil {
			t.Fatal("resume must reject an out-of-range cursor")
		}
	})
}

// TestCampaignCheckpointFindingRoundTrip: findings survive the snapshot
// with their minimization coordinates (unexported in Finding) intact.
func TestCampaignCheckpointFindingRoundTrip(t *testing.T) {
	r, err := NewRunner(Config{Seed: 7, Count: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Seed: 7, Count: 10, Shapes: map[string]int{"uaf": 2}}
	for range r.tools {
		rep.Tools = append(rep.Tools, ToolReport{})
	}
	rep.Findings = append(rep.Findings, Finding{
		Tool: "cecsan", Seed: 99, Shape: "uaf", Reason: "missed-detection",
		Outcome: "clean", Source: "int main() {}", caseIdx: 5, toolIdx: 2,
	})
	chain := sha256.New()
	chain.Write([]byte("some absorbed prefix"))
	wantSum := sha256.New()
	wantSum.Write([]byte("some absorbed prefix"))

	ck, err := r.captureCampaign(rep, chain, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f.ckpt")
	if err := checkpoint.Save(path, checkpoint.KindFuzz, ck); err != nil {
		t.Fatal(err)
	}
	var loaded CampaignCheckpoint
	if err := checkpoint.Load(path, checkpoint.KindFuzz, &loaded); err != nil {
		t.Fatal(err)
	}

	rep2 := &Report{Seed: 7, Count: 10, Shapes: map[string]int{}}
	for range r.tools {
		rep2.Tools = append(rep2.Tools, ToolReport{})
	}
	chain2 := sha256.New()
	if err := r.restoreCampaign(rep2, chain2, &loaded); err != nil {
		t.Fatal(err)
	}
	if len(rep2.Findings) != 1 {
		t.Fatalf("findings lost: %d", len(rep2.Findings))
	}
	f := rep2.Findings[0]
	if f.caseIdx != 5 || f.toolIdx != 2 || f.Seed != 99 || f.Reason != "missed-detection" {
		t.Fatalf("finding coordinates corrupted: %+v caseIdx=%d toolIdx=%d", f, f.caseIdx, f.toolIdx)
	}
	if rep2.Shapes["uaf"] != 2 {
		t.Fatalf("shapes lost: %v", rep2.Shapes)
	}
	if !bytes.Equal(chain2.Sum(nil), wantSum.Sum(nil)) {
		t.Fatal("digest chain state corrupted across the snapshot")
	}
}
