package fuzz

import (
	"fmt"

	"cecsan/internal/rt"
)

// bugShape is one entry in the injection taxonomy: a predicate deciding
// which objects it can target and a builder producing the buggy op plus the
// oracle attributes the expectation models consume.
//
// The taxonomy (see DESIGN.md for the expectation matrix):
//
//	spatial      oob_store oob_load oob_underflow oob_loop oob_far_stride
//	             oob_memcpy oob_memset oob_strcpy oob_strncpy oob_wmemset
//	             oob_wcsncpy oob_input
//	subobject    subobj_store subobj_memcpy
//	temporal     uaf_store uaf_load uaf_memcpy uaf_memset uaf_wide
//	             uaf_reloaded uaf_quarantine_flush uaf_realloc_grow
//	             uaf_realloc_alias uaf_realloc_reuse double_free
//	             double_free_alias
//	invalidfree  invfree_interior invfree_stack invfree_global
//	external     extern_oob
type bugShape struct {
	name    string
	class   string
	atEnd   bool // temporal/invalid-free ops run after all benign ops
	applies func(g *genState, oi int) bool
	build   func(g *genState, oi int) (*op, Oracle)
}

func plain(g *genState, oi int) bool { return !g.obj(oi).isStruct() }
func plainChar(g *genState, oi int) bool {
	o := g.obj(oi)
	return !o.isStruct() && o.elem == "char"
}
func heapPlain(g *genState, oi int) bool {
	o := g.obj(oi)
	return !o.isStruct() && o.seg == "heap"
}
func isStruct(g *genState, oi int) bool { return g.obj(oi).isStruct() }

// lastHeap reports whether oi is the most recently allocated heap object,
// so that a far stride beyond it lands in virgin heap (no other chunk's
// redzone or tag granules), keeping the expectation models deterministic.
func lastHeap(g *genState, oi int) bool {
	if g.obj(oi).seg != "heap" {
		return false
	}
	for j := oi + 1; j < len(g.objects); j++ {
		if g.objects[j].seg == "heap" {
			return false
		}
	}
	return true
}

var shapes = []bugShape{
	{name: "oob_store", class: ClassSpatial, applies: plain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			dd := int64(g.r.rangeIn(0, 2))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("%s[%d] = 7;", o.name, o.count+dd)}},
				Oracle{Kind: rt.KindOOBWrite,
					OffStart: (o.count + dd) * o.es, OffEnd: (o.count+dd)*o.es + o.es}
		}},
	{name: "oob_load", class: ClassSpatial, applies: plain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			dd := int64(g.r.rangeIn(0, 2))
			v := g.fresh("v")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("var %s = %s[%d];", v, o.name, o.count+dd),
					fmt.Sprintf("print_int(%s);", v)}},
				Oracle{Kind: rt.KindOOBRead,
					OffStart: (o.count + dd) * o.es, OffEnd: (o.count+dd)*o.es + o.es}
		}},
	// Underflow stays off globals: ASan's model only places right redzones
	// on globals, so the left-neighbour shadow is layout-dependent there.
	{name: "oob_underflow", class: ClassSpatial,
		applies: func(g *genState, oi int) bool {
			o := g.obj(oi)
			return !o.isStruct() && o.seg != "global"
		},
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			v := g.fresh("v")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("var %s = 0 - 1;", v),
					fmt.Sprintf("%s[%s] = 9;", o.name, v)}},
				Oracle{Kind: rt.KindOOBWrite, Underflow: true, OffStart: -o.es, OffEnd: 0}
		}},
	{name: "oob_loop", class: ClassSpatial, applies: plain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			dd := int64(g.r.rangeIn(1, 2))
			i := g.fresh("i")
			return &op{uses: []int{oi}, lines: []string{fmt.Sprintf(
					"for (%s = 0; %s < %d; %s += 1) { %s[%s] = 5; }",
					i, i, o.count+dd, i, o.name, i)}},
				Oracle{Kind: rt.KindOOBWrite,
					OffStart: o.count * o.es, OffEnd: (o.count + dd) * o.es}
		}},
	{name: "oob_far_stride", class: ClassSpatial,
		applies: func(g *genState, oi int) bool {
			return plainChar(g, oi) && lastHeap(g, oi)
		},
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("%s[%d] = 7;", o.name, o.bytes()+512)}},
				Oracle{Kind: rt.KindOOBWrite, FarStride: true,
					OffStart: o.bytes() + 512, OffEnd: o.bytes() + 513}
		}},
	{name: "oob_memcpy", class: ClassSpatial, applies: plain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			n := o.bytes() + int64(g.r.rangeIn(1, 8))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("memcpy(%s, %s, %d);", o.name, gSrcName, n)}},
				Oracle{Kind: rt.KindOOBWrite, Libc: "memcpy", OffStart: o.bytes(), OffEnd: n}
		}},
	{name: "oob_memset", class: ClassSpatial, applies: plain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			n := o.bytes() + int64(g.r.rangeIn(1, 8))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("memset(%s, 1, %d);", o.name, n)}},
				Oracle{Kind: rt.KindOOBWrite, Libc: "memset", OffStart: o.bytes(), OffEnd: n}
		}},
	{name: "oob_strcpy", class: ClassSpatial,
		applies: func(g *genState, oi int) bool {
			return plainChar(g, oi) && g.obj(oi).bytes() <= 56
		},
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi) // GLONG is 64 chars; strcpy writes 65 bytes
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("strcpy(%s, %s);", o.name, gLongName)}},
				Oracle{Kind: rt.KindOOBWrite, Libc: "strcpy",
					OffStart: o.bytes(), OffEnd: int64(len(gLongValue)) + 1}
		}},
	{name: "oob_strncpy", class: ClassSpatial, applies: plainChar,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			n := o.bytes() + int64(g.r.rangeIn(1, 8))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("strncpy(%s, %s, %d);", o.name, gSrcName, n)}},
				Oracle{Kind: rt.KindOOBWrite, Libc: "strncpy", OffStart: o.bytes(), OffEnd: n}
		}},
	{name: "oob_wmemset", class: ClassSpatial,
		applies: func(g *genState, oi int) bool { return g.obj(oi).wideOK() },
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			n := o.bytes()/4 + int64(g.r.rangeIn(1, 4))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("wmemset(%s, 3, %d);", o.name, n)}},
				Oracle{Kind: rt.KindOOBWrite, Libc: "wmemset", Wide: true,
					OffStart: o.bytes(), OffEnd: 4 * n}
		}},
	{name: "oob_wcsncpy", class: ClassSpatial,
		applies: func(g *genState, oi int) bool {
			o := g.obj(oi) // n must stay within WSRC's 16 elements
			return o.wideOK() && o.bytes() <= 48
		},
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			n := o.bytes()/4 + int64(g.r.rangeIn(1, 4))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("wcsncpy(%s, %s, %d);", o.name, gWideName, n)}},
				Oracle{Kind: rt.KindOOBWrite, Libc: "wcsncpy", Wide: true,
					OffStart: o.bytes(), OffEnd: 4 * n}
		}},
	{name: "oob_input", class: ClassSpatial,
		applies: func(g *genState, oi int) bool {
			o := g.obj(oi)
			return !o.isStruct() && o.count+2 < 250
		},
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			dd := int64(g.r.rangeIn(0, 2))
			rb, k := g.fresh("rb"), g.fresh("k")
			return &op{uses: []int{oi}, inputs: [][]byte{{byte(o.count + dd)}},
					lines: []string{
						fmt.Sprintf("var %s = local char[8];", rb),
						fmt.Sprintf("recv(%s, 8);", rb),
						fmt.Sprintf("var %s = %s[0];", k, rb),
						fmt.Sprintf("%s[%s] = 3;", o.name, k)}},
				Oracle{Kind: rt.KindOOBWrite, InputDriven: true,
					OffStart: (o.count + dd) * o.es, OffEnd: (o.count+dd)*o.es + o.es}
		}},

	// Sub-object overflows stay inside the struct (the tail fields absorb
	// them), so only bounds-narrowing sanitizers can see them.
	{name: "subobj_store", class: ClassSubObject, applies: isStruct,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			dd := int64(g.r.rangeIn(0, 7))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("%s->buf[%d] = 1;", o.name, o.structBuf+dd)}},
				Oracle{Kind: rt.KindSubObjectOverflow, SubObject: true,
					OffStart: o.structBuf + dd, OffEnd: o.structBuf + dd + 1, ObjBytes: o.structBuf}
		}},
	{name: "subobj_memcpy", class: ClassSubObject, applies: isStruct,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			n := o.structBuf + int64(g.r.rangeIn(1, 8))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("memcpy(%s->buf, %s, %d);", o.name, gSrcName, n)}},
				Oracle{Kind: rt.KindSubObjectOverflow, SubObject: true, Libc: "memcpy",
					OffStart: o.structBuf, OffEnd: n, ObjBytes: o.structBuf}
		}},

	{name: "uaf_store", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("%s[%d] = 5;", o.name, g.r.intn(int(o.bytes())))}},
				Oracle{Kind: rt.KindUseAfterFree}
		}},
	{name: "uaf_load", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			v := g.fresh("v")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("var %s = %s[%d];", v, o.name, g.r.intn(int(o.bytes()))),
					fmt.Sprintf("print_int(%s);", v)}},
				Oracle{Kind: rt.KindUseAfterFree}
		}},
	{name: "uaf_memcpy", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			n := 1 + g.r.intn(int(o.bytes()))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("memcpy(%s, %s, %d);", o.name, gSrcName, n)}},
				Oracle{Kind: rt.KindUseAfterFree, Libc: "memcpy"}
		}},
	{name: "uaf_memset", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			n := 1 + g.r.intn(int(o.bytes()))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("memset(%s, 0, %d);", o.name, n)}},
				Oracle{Kind: rt.KindUseAfterFree, Libc: "memset"}
		}},
	{name: "uaf_wide", class: ClassTemporal, atEnd: true,
		applies: func(g *genState, oi int) bool {
			o := g.obj(oi)
			return o.seg == "heap" && o.wideOK()
		},
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			n := 1 + g.r.intn(int(o.bytes()/4))
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("wmemset(%s, 1, %d);", o.name, n)}},
				Oracle{Kind: rt.KindUseAfterFree, Libc: "wmemset", Wide: true}
		}},
	// The pointer round-trips through memory: SoftBound/CETS's shadow
	// propagation drops the key+lock there (spatial bounds survive).
	{name: "uaf_reloaded", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			q := g.fresh("q")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("%s = %s;", gCellName, o.name),
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("var %s = %s;", q, gCellName),
					fmt.Sprintf("%s[%d] = 2;", q, g.r.intn(int(o.bytes())))}},
				Oracle{Kind: rt.KindUseAfterFree, Reloaded: true}
		}},
	// Enough churn to evict the chunk from ASan's 2 MiB quarantine, then a
	// same-size malloc recycles the memory before the stale access. The
	// recycling also defeats the CECSan family: the same-size allocation
	// reuses both the chunk address (LIFO size classes) and the freed
	// metadata-table index, rebuilding an entry that validates the stale
	// tagged pointer — the tag-reuse window every allocation-indexed
	// design carries, surfaced by this fuzzer (see ROADMAP Open items).
	{name: "uaf_quarantine_flush", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			i, t, u := g.fresh("i"), g.fresh("t"), g.fresh("u")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("for (%s = 0; %s < 24; %s += 1) { var %s = malloc(131072); free(%s); }",
						i, i, i, t, t),
					fmt.Sprintf("var %s = malloc(%d);", u, o.bytes()),
					fmt.Sprintf("%s[%d] = 3;", o.name, g.r.intn(int(o.bytes())))}},
				Oracle{Kind: rt.KindUseAfterFree, Reuse: true}
		}},
	// realloc-lifetime temporal shapes: the old chunk's lifetime ends inside
	// realloc (this allocator's realloc always moves), so the pre-realloc
	// pointer and its aliases dangle the moment the call returns.
	{name: "uaf_realloc_grow", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			q := g.fresh("q")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("var %s = realloc(%s, %d);", q, o.name, 2*o.bytes()),
					fmt.Sprintf("%s[%d] = 5;", o.name, g.r.intn(int(o.bytes())))}},
				Oracle{Kind: rt.KindUseAfterFree}
		}},
	{name: "uaf_realloc_alias", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			a, q := g.fresh("a"), g.fresh("q")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("var %s = %s;", a, o.name),
					fmt.Sprintf("var %s = realloc(%s, %d);", q, o.name, o.bytes()+16),
					fmt.Sprintf("%s[%d] = 7;", a, g.r.intn(int(o.bytes())))}},
				Oracle{Kind: rt.KindUseAfterFree}
		}},
	// The same-size variant reopens the tag-reuse window without ASan-scale
	// churn: realloc frees the old chunk to its LIFO size class and a
	// same-size malloc immediately reoccupies both the address and (for the
	// CECSan family) the freed metadata-table index — but the old chunk
	// never left ASan's quarantine, so its shadow is still poisoned.
	{name: "uaf_realloc_reuse", class: ClassTemporal, atEnd: true, applies: heapPlain,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			q, u := g.fresh("q"), g.fresh("u")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("var %s = realloc(%s, %d);", q, o.name, o.bytes()),
					fmt.Sprintf("var %s = malloc(%d);", u, o.bytes()),
					fmt.Sprintf("%s[%d] = 3;", o.name, g.r.intn(int(o.bytes())))}},
				Oracle{Kind: rt.KindUseAfterFree, IndexReuse: true}
		}},
	{name: "double_free", class: ClassTemporal, atEnd: true,
		applies: func(g *genState, oi int) bool { return g.obj(oi).seg == "heap" },
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s);", o.name),
					fmt.Sprintf("free(%s);", o.name)}},
				Oracle{Kind: rt.KindDoubleFree}
		}},
	{name: "double_free_alias", class: ClassTemporal, atEnd: true,
		applies: func(g *genState, oi int) bool { return g.obj(oi).seg == "heap" },
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			o.freedByBug = true
			a := g.fresh("a")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("var %s = %s;", a, o.name),
					fmt.Sprintf("free(%s);", a),
					fmt.Sprintf("free(%s);", o.name)}},
				Oracle{Kind: rt.KindDoubleFree}
		}},

	// The interior free is silently ignored by the stock allocator, so the
	// object stays live and the epilogue free remains valid (for the tools
	// that let execution continue).
	{name: "invfree_interior", class: ClassInvalidFree, atEnd: true,
		applies: func(g *genState, oi int) bool {
			return heapPlain(g, oi) && g.obj(oi).bytes() >= 32
		},
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("free(%s + 16);", o.name)}},
				Oracle{Kind: rt.KindInvalidFree}
		}},
	{name: "invfree_stack", class: ClassInvalidFree, atEnd: true,
		applies: func(g *genState, oi int) bool { return g.obj(oi).seg == "stack" },
		build: func(g *genState, oi int) (*op, Oracle) {
			return &op{uses: []int{oi}, lines: []string{
				fmt.Sprintf("free(%s);", g.obj(oi).name)}}, Oracle{Kind: rt.KindInvalidFree}
		}},
	{name: "invfree_global", class: ClassInvalidFree, atEnd: true,
		applies: func(g *genState, oi int) bool { return g.obj(oi).seg == "global" },
		build: func(g *genState, oi int) (*op, Oracle) {
			return &op{uses: []int{oi}, lines: []string{
				fmt.Sprintf("free(%s);", g.obj(oi).name)}}, Oracle{Kind: rt.KindInvalidFree}
		}},

	// The OOB access happens through a pointer that round-tripped through
	// uninstrumented code via the §II.E returns-own-argument wrapper
	// (`externret`), which re-applies the stripped tag bits on return for
	// every tagging tool — but cannot restore SoftBound's per-pointer
	// metadata, which does not survive the boundary. (A plain `extern`
	// return is adopted unchecked under CECSan's reserved entry 0 — full
	// functionality, no protection — so it is deliberately NOT a taxonomy
	// shape: it sits outside the paper's protection claim.)
	{name: "extern_oob", class: ClassExternal, applies: plainChar,
		build: func(g *genState, oi int) (*op, Oracle) {
			o := g.obj(oi)
			dd := int64(g.r.rangeIn(0, 2))
			x := g.fresh("x")
			return &op{uses: []int{oi}, lines: []string{
					fmt.Sprintf("var %s = externret ext_identity(%s);", x, o.name),
					fmt.Sprintf("%s[%d] = 5;", x, o.count+dd)}},
				Oracle{Kind: rt.KindOOBWrite, Extern: true,
					OffStart: o.count + dd, OffEnd: o.count + dd + 1}
		}},
}

// shapeFor returns the taxonomy entry by name.
func shapeFor(name string) *bugShape {
	for i := range shapes {
		if shapes[i].name == name {
			return &shapes[i]
		}
	}
	return nil
}

// ShapeNames lists the taxonomy in declaration order.
func ShapeNames() []string {
	out := make([]string, len(shapes))
	for i := range shapes {
		out[i] = shapes[i].name
	}
	return out
}

// injectBug picks one applicable (shape, object) pair — shape first, so
// rare object kinds still surface their shapes — and builds the bug op.
func injectBug(g *genState) (*op, Oracle) {
	var applicable []int
	for si := range shapes {
		for oi := range g.objects {
			if shapes[si].applies(g, oi) {
				applicable = append(applicable, si)
				break
			}
		}
	}
	s := &shapes[applicable[g.r.intn(len(applicable))]]
	var objs []int
	for oi := range g.objects {
		if s.applies(g, oi) {
			objs = append(objs, oi)
		}
	}
	oi := objs[g.r.intn(len(objs))]
	bugOp, o := s.build(g, oi)
	bugOp.essential = true
	o.Injected = true
	o.Shape = s.name
	o.Class = s.class
	o.Seg = g.obj(oi).seg
	if o.ObjBytes == 0 {
		o.ObjBytes = g.obj(oi).bytes()
	}
	return bugOp, o
}
