// Package flaws models the ten Linux Flaw Project CVEs the paper reproduces
// in Table III. Each scenario is an IR program that re-creates the published
// bug pattern — the parsing logic, allocation sizing mistake or lifetime
// error — driven by a crafted input from the harness's feed, plus a patched
// variant that performs the corrected logic on the same input.
package flaws

import (
	"encoding/binary"
	"fmt"

	"cecsan/prog"
)

// Flaw is one CVE scenario.
type Flaw struct {
	CVE  string
	Type string // ASan-style report type from Table III
	Desc string
	// Build returns the vulnerable (patched=false) or fixed (patched=true)
	// program plus its input feed.
	Build func(patched bool) (*prog.Program, [][]byte)
}

// le32 encodes a 32-bit little-endian payload field.
func le32(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

// All returns the Table III scenarios in order.
func All() []Flaw {
	return []Flaw{
		{
			CVE:  "CVE-2006-2362",
			Type: "stack-buffer-overflow",
			Desc: "binutils strings/bfd: tekhex record parser copies a length-prefixed field into a fixed stack buffer",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				// Record: [len u32][bytes...]; the parser trusts len.
				hdr := f.Alloca(prog.ArrayOf(prog.Char(), 8))
				f.Libc("recv", hdr, f.Const(4))
				n := f.Load(hdr, 0, prog.Int())
				if patched {
					// Fixed: clamp the length to the buffer size.
					over := f.Cmp(prog.CmpSGt, n, f.Const(16))
					f.If(over, func() { f.AssignConst(n, 16) }, nil)
				}
				buf := f.Alloca(prog.ArrayOf(prog.Char(), 16))
				payload := f.Alloca(prog.ArrayOf(prog.Char(), 64))
				f.Libc("recv", payload, f.Const(64))
				f.Libc("memcpy", buf, payload, n)
				f.RetVoid()
				field := make([]byte, 40)
				return pb.MustBuild(), [][]byte{le32(40), field}
			},
		},
		{
			CVE:  "CVE-2007-6015",
			Type: "heap-buffer-overflow",
			Desc: "samba send_mailslot: GETDC mailslot name copied into an undersized heap buffer",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				long := make([]byte, 80)
				for i := range long {
					long[i] = 'D'
				}
				pb.GlobalBytes("dc_name", long)
				f := pb.Function("main", 0)
				size := int64(32)
				if patched {
					size = 128
				}
				buf := f.MallocBytes(size)
				f.Libc("strcpy", buf, f.GlobalAddr("dc_name"))
				f.Free(buf)
				f.RetVoid()
				return pb.MustBuild(), nil
			},
		},
		{
			CVE:  "CVE-2009-2285",
			Type: "heap-buffer-overflow",
			Desc: "libtiff LZWDecodeCompat: decoder writes one stride before the output buffer on a crafted code stream",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				out := f.MallocBytes(64)
				// op = out + cursor; a crafted stream drives cursor to -4.
				cur := f.Alloca(prog.ArrayOf(prog.Char(), 8))
				f.Libc("recv", cur, f.Const(4))
				off := f.Load(cur, 0, prog.Int())
				op := f.OffsetPtrReg(out, off)
				f.Store(op, 0, f.Const(0xAB), prog.Int())
				f.Free(out)
				f.RetVoid()
				bad := le32(^uint32(3)) // -4
				if patched {
					bad = le32(0)
				}
				return pb.MustBuild(), [][]byte{bad}
			},
		},
		{
			CVE:  "CVE-2013-4243",
			Type: "heap-buffer-overflow",
			Desc: "libtiff gif2tiff: raster buffer sized from the header while the LZW stream emits more pixels",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				hdr := f.Alloca(prog.ArrayOf(prog.Char(), 8))
				f.Libc("recv", hdr, f.Const(8))
				w := f.Load(hdr, 0, prog.Int())
				h := f.Load(hdr, 4, prog.Int())
				raster := f.MallocReg(f.Mul(w, h))
				// The decode loop emits width*height+stride pixels.
				emitted := f.Mul(w, h)
				if !patched {
					emitted = f.Add(emitted, f.Const(13))
				}
				f.ForRange(prog.RegOperand(f.Const(0)), prog.RegOperand(emitted), 1, func(i prog.Reg) {
					f.Store(f.OffsetPtrReg(raster, i), 0, i, prog.Char())
				})
				f.Free(raster)
				f.RetVoid()
				return pb.MustBuild(), [][]byte{append(le32(16), le32(16)...)}
			},
		},
		{
			CVE:  "CVE-2014-1912",
			Type: "heap-buffer-overflow",
			Desc: "python socket.recvfrom_into: received bytes written into a caller buffer without a length check",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				buf := f.MallocBytes(32)
				limit := int64(1024)
				if patched {
					limit = 32
				}
				// recvfrom_into passed the caller's requested length, not
				// the buffer's.
				f.Libc("recv", buf, f.Const(limit))
				f.Free(buf)
				f.RetVoid()
				payload := make([]byte, 64)
				return pb.MustBuild(), [][]byte{payload}
			},
		},
		{
			CVE:  "CVE-2015-8668",
			Type: "heap-buffer-overflow",
			Desc: "libtiff bmp2tiff: RLE decompression writes past the buffer sized from the BMP header",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				hdr := f.Alloca(prog.ArrayOf(prog.Char(), 8))
				f.Libc("recv", hdr, f.Const(8))
				declared := f.Load(hdr, 0, prog.Int())
				runs := f.Load(hdr, 4, prog.Int())
				buf := f.MallocReg(declared)
				// Each RLE run writes 8 bytes; a crafted run count exceeds
				// the declared size. The patch validates runs*8 <= declared.
				if patched {
					tooMany := f.Cmp(prog.CmpSGt, f.Mul(runs, f.Const(8)), declared)
					f.If(tooMany, func() { f.AssignConst(runs, 0) }, nil)
				}
				f.ForRange(prog.RegOperand(f.Const(0)), prog.RegOperand(runs), 1, func(i prog.Reg) {
					p := f.ElemPtr(buf, prog.Int64T(), i)
					f.Store(p, 0, i, prog.Int64T())
				})
				f.Free(buf)
				f.RetVoid()
				return pb.MustBuild(), [][]byte{append(le32(64), le32(10)...)} // 10 runs * 8 > 64
			},
		},
		{
			CVE:  "CVE-2015-9101",
			Type: "heap-buffer-overflow",
			Desc: "lame III_dequantize_sample: band index from the bitstream walks past the xr[] buffer",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				xr := f.MallocType(prog.ArrayOf(prog.Int(), 576))
				idx := f.Alloca(prog.ArrayOf(prog.Char(), 8))
				f.Libc("recv", idx, f.Const(4))
				band := f.Load(idx, 0, prog.Int())
				if patched {
					over := f.Cmp(prog.CmpSGe, band, f.Const(576))
					f.If(over, func() { f.AssignConst(band, 575) }, nil)
				}
				f.Store(f.ElemPtr(xr, prog.Int(), band), 0, f.Const(1), prog.Int())
				f.Free(xr)
				f.RetVoid()
				return pb.MustBuild(), [][]byte{le32(580)}
			},
		},
		{
			CVE:  "CVE-2016-10095",
			Type: "stack-buffer-overflow",
			Desc: "libtiff _TIFFVGetField: tag value copied into a fixed stack buffer with strcpy",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				long := make([]byte, 100)
				for i := range long {
					long[i] = 'T'
				}
				pb.GlobalBytes("tag_value", long)
				pb.GlobalBytes("tag_short", []byte("ShortTag"))
				f := pb.Function("main", 0)
				buf := f.Alloca(prog.ArrayOf(prog.Char(), 32))
				src := "tag_value"
				if patched {
					src = "tag_short" // the fix bounds the copy
				}
				f.Libc("strcpy", buf, f.GlobalAddr(src))
				f.RetVoid()
				return pb.MustBuild(), nil
			},
		},
		{
			CVE:  "CVE-2017-12858",
			Type: "heap-use-after-free",
			Desc: "libzip _zip_dirent_read: the entry buffer is freed on the error path and then reused",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				f := pb.Function("main", 0)
				entry := f.MallocBytes(48)
				hdr := f.Alloca(prog.ArrayOf(prog.Char(), 8))
				f.Libc("recv", hdr, f.Const(4))
				status := f.Load(hdr, 0, prog.Int())
				// Error path frees the entry...
				isErr := f.Cmp(prog.CmpNe, status, f.Const(0))
				f.If(isErr, func() { f.Free(entry) }, nil)
				// ...but the caller keeps using it.
				if patched {
					f.If(f.Cmp(prog.CmpEq, status, f.Const(0)), func() {
						f.Store(entry, 0, f.Const(7), prog.Int64T())
						f.Free(entry)
					}, nil)
				} else {
					f.Store(entry, 0, f.Const(7), prog.Int64T())
				}
				f.RetVoid()
				return pb.MustBuild(), [][]byte{le32(1)} // take the error path
			},
		},
		{
			CVE:  "CVE-2018-9138",
			Type: "stack-overflow",
			Desc: "binutils libiberty demangler: unbounded mutual recursion on a crafted mangled symbol exhausts the stack",
			Build: func(patched bool) (*prog.Program, [][]byte) {
				pb := prog.NewProgram()
				// demangle(depth): each frame holds a component buffer and
				// recurses while the next input character is '<'.
				d := pb.Function("demangle", 1)
				depth := d.Arg(0)
				comp := d.Alloca(prog.ArrayOf(prog.Char(), 512))
				d.Libc("memset", comp, d.Const(0), d.Const(512))
				limitReg := d.Const(1 << 30) // effectively unbounded
				stop := d.Cmp(prog.CmpSGe, depth, limitReg)
				d.If(stop, func() { d.Ret(depth) }, nil)
				d.Ret(d.Call("demangle", d.AddImm(depth, 1)))

				f := pb.Function("main", 0)
				levels := int64(1 << 20)
				if patched {
					levels = 0 // the fix imposes a recursion limit up front
				}
				guard := f.Cmp(prog.CmpSGt, f.Const(levels), f.Const(0))
				f.If(guard, func() { f.Call("demangle", f.Const(0)) }, nil)
				f.RetVoid()
				return pb.MustBuild(), nil
			},
		},
	}
}

// Validate sanity-checks the scenario list.
func Validate(fl []Flaw) error {
	if len(fl) != 10 {
		return fmt.Errorf("flaws: %d scenarios, want 10 (Table III)", len(fl))
	}
	seen := map[string]bool{}
	for _, x := range fl {
		if seen[x.CVE] {
			return fmt.Errorf("flaws: duplicate %s", x.CVE)
		}
		seen[x.CVE] = true
	}
	return nil
}
