package fuzz

import "cecsan/internal/sanitizers"

// Expect is the oracle's prediction for one (sanitizer, bug) pair.
type Expect int

const (
	// ExpectDetect: the model's mechanism must catch this bug. A clean run
	// is a finding ("unexpected-miss"; for CECSan, "cecsan-false-negative").
	ExpectDetect Expect = iota + 1
	// ExpectMiss: the bug sits in the model's documented blind spot; the
	// run must complete silently. A report is a finding ("unexpected-detect").
	ExpectMiss
	// ExpectMaybe: detection depends on probabilistic state (HWASan's
	// random tags colliding at 1/255) or on memory the model does not
	// control; either outcome is accepted.
	ExpectMaybe
)

// String renders the expectation for JSON records.
func (e Expect) String() string {
	switch e {
	case ExpectDetect:
		return "detect"
	case ExpectMiss:
		return "miss"
	case ExpectMaybe:
		return "maybe"
	}
	return "?"
}

func align16(n int64) int64 { return (n + 15) &^ 15 }

// ExpectFor predicts the outcome of running an injected bug under the named
// sanitizer. Each branch encodes a documented property of the model's
// mechanism (file references point at the implementation the prediction is
// derived from); the differential campaign exists to falsify them.
func ExpectFor(tool sanitizers.Name, o *Oracle) Expect {
	if !o.Injected {
		return ExpectMiss
	}
	switch tool {
	case sanitizers.Native:
		// No checks at all; the flat address space absorbs every access.
		return ExpectMiss
	case sanitizers.CECSan:
		// The paper's comprehensiveness claim: everything, including
		// sub-object overflows (§II.D) and accesses through re-tagged
		// external pointers (§II.E) — with one exception this fuzzer
		// surfaced. Table.Free threads the freed entry onto the GMI free
		// structure for immediate reuse (metatable.go, Figure 2), so a
		// staged same-size reallocation reclaims both the chunk address
		// and the freed table index: the stale tagged pointer then
		// resolves to the rebuilt entry, whose bounds cover the very
		// address it dangles into. The tag-reuse window is inherent to
		// every allocation-indexed design; see ROADMAP "Open items".
		// IndexReuse is the realloc-staged variant of the same window.
		if o.Reuse || o.IndexReuse {
			return ExpectMiss
		}
		return ExpectDetect
	case sanitizers.PACMem, sanitizers.CryptSan:
		// Full CECSan-style tagging without sub-object narrowing
		// (core.Options.SubObject=false); the tag-reuse window above
		// applies identically.
		if o.SubObject || o.Reuse || o.IndexReuse {
			return ExpectMiss
		}
		return ExpectDetect
	case sanitizers.CECSanHardened:
		// Both temporal mitigations on: the freed index's generation is
		// bumped (so the stale tag fails even against a rebuilt entry) and
		// the chunk address sits in an 8 MiB quarantine the staged churn
		// cannot flush. The Reuse/IndexReuse blind spots close; everything
		// else is unchanged from CECSan.
		return ExpectDetect
	case sanitizers.PACMemHardened, sanitizers.CryptSanHardened:
		// Hardening closes the reuse window; the sub-object gap is
		// structural (no narrowing) and remains.
		if o.SubObject {
			return ExpectMiss
		}
		return ExpectDetect
	case sanitizers.ASan, sanitizers.ASanLite:
		// ASAN-- is ASan's runtime with fewer (redundant) checks; its
		// detection envelope is identical (asanlite.go).
		return expectASan(o)
	case sanitizers.HWASan:
		return expectHWASan(o)
	case sanitizers.SoftBound:
		return expectSoftBound(o)
	}
	return ExpectMaybe
}

// expectASan models asan.go: redzone poisoning plus partial-granule shadow
// encoding, a 2 MiB FIFO quarantine, and no wide-string interceptors.
func expectASan(o *Oracle) Expect {
	switch {
	case o.SubObject:
		// Intra-object accesses never touch poisoned shadow.
		return ExpectMiss
	case o.Wide:
		// InterceptWide=false: wcs*/wmem* run unchecked.
		return ExpectMiss
	case o.Reuse:
		// Churn past QuarantineBytes recycles the chunk; its shadow is
		// addressable again when the stale access lands.
		return ExpectMiss
	case o.Class == ClassTemporal, o.Class == ClassInvalidFree:
		// Quarantined chunks keep poisoned shadow; Free validates base
		// pointers and segment.
		return ExpectDetect
	case o.Underflow:
		// Left redzone on heap chunks, 8-byte left poison on stack slots
		// (the generator keeps underflows off right-redzone-only globals).
		return ExpectDetect
	default:
		// Spatial: detected while the access starts inside the partial
		// granule ([ObjBytes, align8)) or the right redzone. Beyond that —
		// the far-stride shapes — the access lands on addressable memory.
		return spatialReach(o, align8(o.ObjBytes)+asanReach(o.Seg))
	}
}

// asanReach is the right-redzone span: 16 bytes for heap chunks of the
// sizes the generator emits (redzoneFor <= 128) and for globals
// (GlobalRedzone), 8 bytes of poison for stack slots (StackRedzone).
func asanReach(seg string) int64 {
	if seg == "stack" {
		return 8
	}
	return 16
}

// spatialReach classifies a spatial bug by where its first violating byte
// lands relative to the model's detection horizon.
func spatialReach(o *Oracle, horizon int64) Expect {
	if o.OffStart < horizon {
		return ExpectDetect
	}
	return ExpectMiss
}

// expectHWASan models hwasan.go: 16-byte tag granules, random per-
// allocation tags (1/255 collision), and no wide interceptors. The
// externret wrapper re-applies tag bits at the machine level, so the
// external shapes reduce to ordinary spatial arithmetic here.
func expectHWASan(o *Oracle) Expect {
	switch {
	case o.SubObject:
		// One tag per allocation; intra-object overflows stay in-tag.
		return ExpectMiss
	case o.Wide:
		// LibcCheck skips wcs*/wmem*.
		return ExpectMiss
	case o.Class == ClassInvalidFree:
		// Interior/stack/global frees carry the matching memory tag, so
		// the ptr-tag==mem-tag free check passes and the stock allocator
		// silently ignores the bogus free.
		return ExpectMiss
	case o.Class == ClassTemporal:
		// Free retags the granules; detection is certain except for a
		// 1/255 tag reuse collision (and reallocation retags again).
		return ExpectMaybe
	case o.Underflow:
		// The preceding granule belongs to a neighbour (or headers) whose
		// tag is unrelated — usually a mismatch, never a guarantee.
		return ExpectMaybe
	default:
		// Spatial: the allocation's tag covers [0, align16(ObjBytes)), so
		// an access that stays inside the tag granules is invisible;
		// beyond them the tag differs except by collision.
		if o.OffEnd > align16(o.ObjBytes) {
			return ExpectMaybe
		}
		return ExpectMiss
	}
}

// expectSoftBound models softbound.go: per-pointer bounds with key+lock
// temporal metadata, dropped on stores to memory, absent for external
// pointers, with memset and the wide family uninstrumented.
func expectSoftBound(o *Oracle) Expect {
	switch {
	case o.SubObject:
		// Bounds are per allocation (the classic SoftBound trade-off).
		return ExpectMiss
	case o.Wide:
		return ExpectMiss
	case o.Libc == "memset":
		// The wrapper set omits memset.
		return ExpectMiss
	case o.Extern:
		// No metadata for pointers materialized by uninstrumented code.
		return ExpectMiss
	case o.Class == ClassTemporal && o.Reloaded:
		// StorePtrMeta spills bounds but drops Key/Lock; the reloaded
		// pointer passes temporal checks.
		return ExpectMiss
	default:
		// Bounds and key/lock checks are exact for everything else:
		// spatial (any distance, no redzone horizon), UAF, double free,
		// and invalid frees of every segment — interior heap frees
		// included, since pointer arithmetic propagates per-pointer
		// metadata (interp OpBin), so free(p+16) arrives with the
		// original allocation's provenance and fails the base check.
		return ExpectDetect
	}
}
