// Package cecsan is the public API of this reproduction of "Highly
// Comprehensive and Efficient Memory Safety Enforcement with Pointer
// Tagging" (CECSan, DSN 2024).
//
// The library executes C-like programs (built with the prog package) on a
// simulated 64-bit machine under a chosen sanitizer:
//
//	p := prog.NewProgram()
//	f := p.Function("main", 0)
//	buf := f.MallocBytes(16)
//	f.Store(buf, 16, f.Const(1), prog.Char()) // off-by-one
//	f.RetVoid()
//
//	res, err := cecsan.Run(p.MustBuild(), cecsan.Config{Sanitizer: cecsan.CECSan})
//	if res.Violation != nil { fmt.Println(res.Violation) } // buffer-overflow-write
//
// Available sanitizers: CECSan itself plus the paper's comparators (ASan,
// ASAN--, HWASan, SoftBound/CETS, PACMem, CryptSan) and the uninstrumented
// Native baseline. The workloads package provides the paper's experiment
// suites (Juliet-style cases, Linux-Flaw CVE scenarios, SPEC-like
// benchmarks), and cmd/* regenerate each table of the paper's evaluation.
package cecsan

import (
	"fmt"

	"cecsan/internal/core"
	"cecsan/internal/engine"
	"cecsan/internal/interp"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers"
	"cecsan/internal/tagptr"
	"cecsan/prog"
)

// Sanitizer names accepted by Config.Sanitizer.
const (
	Native    = string(sanitizers.Native)
	CECSan    = string(sanitizers.CECSan)
	ASan      = string(sanitizers.ASan)
	ASanLite  = string(sanitizers.ASanLite)
	HWASan    = string(sanitizers.HWASan)
	SoftBound = string(sanitizers.SoftBound)
	PACMem    = string(sanitizers.PACMem)
	CryptSan  = string(sanitizers.CryptSan)
)

// SanitizerNames lists every registered sanitizer.
func SanitizerNames() []string {
	all := sanitizers.All()
	out := make([]string, len(all))
	for i, n := range all {
		out[i] = string(n)
	}
	return out
}

// Result is the outcome of one program run: the sanitizer report (if any),
// machine fault, execution error, return value and counters.
type Result = interp.Result

// Stats are per-run execution counters and footprint gauges.
type Stats = interp.Stats

// Violation is a sanitizer report.
type Violation = rt.Violation

// Violation kinds, for classifying reports.
const (
	KindOOBRead           = rt.KindOOBRead
	KindOOBWrite          = rt.KindOOBWrite
	KindUseAfterFree      = rt.KindUseAfterFree
	KindDoubleFree        = rt.KindDoubleFree
	KindInvalidFree       = rt.KindInvalidFree
	KindSubObjectOverflow = rt.KindSubObjectOverflow
)

// CECSanOptions tunes the CECSan sanitizer itself (architecture, sub-object
// narrowing, §II.F optimization toggles) when Config.Sanitizer is CECSan.
type CECSanOptions = core.Options

// DefaultCECSanOptions returns the paper's prototype configuration
// (x86-64: 47 address bits, 2^17-entry table).
func DefaultCECSanOptions() CECSanOptions { return core.DefaultOptions() }

// ARM64CECSanOptions returns the ARM64 configuration (48 address bits,
// 2^16-entry table).
func ARM64CECSanOptions() CECSanOptions {
	opts := core.DefaultOptions()
	opts.Arch = tagptr.ARM64
	return opts
}

// Config selects the sanitizer and machine parameters for a run.
type Config struct {
	// Sanitizer is the registry name; default CECSan.
	Sanitizer string
	// CECSan optionally overrides CECSan's own options (ablations). Only
	// consulted when Sanitizer is CECSan or empty.
	CECSan *CECSanOptions
	// MaxInstructions bounds the run (0 = default 2e9).
	MaxInstructions int64
	// Seed seeds the program-visible rand() stream (0 = 1).
	Seed uint64
	// Inputs pre-queues payloads for the program's fgets/recv calls.
	Inputs [][]byte
}

// engineFor translates a Config into an execution engine.
func engineFor(cfg Config) (*engine.Engine, error) {
	if cfg.Sanitizer == "" {
		cfg.Sanitizer = CECSan
	}
	eng, err := engine.New(sanitizers.Name(cfg.Sanitizer), engine.Options{
		CECSan:          cfg.CECSan,
		MaxInstructions: cfg.MaxInstructions,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("cecsan: %w", err)
	}
	return eng, nil
}

// Machine is a prepared, single-use execution: an instrumented program
// bound to a fresh sanitizer runtime and simulated address space.
type Machine struct {
	inner *engine.Machine
}

// NewMachine instruments the program per the configured sanitizer's profile
// and prepares a machine through the execution engine. Each NewMachine call
// is an independent "process": the sanitizer runtime is fresh.
func NewMachine(p *prog.Program, cfg Config) (*Machine, error) {
	eng, err := engineFor(cfg)
	if err != nil {
		return nil, err
	}
	m, err := eng.NewMachine(p)
	if err != nil {
		return nil, fmt.Errorf("cecsan: %w", err)
	}
	for _, in := range cfg.Inputs {
		m.Feed(in)
	}
	return &Machine{inner: m}, nil
}

// Feed queues additional input payloads for fgets/recv.
func (m *Machine) Feed(payloads ...[]byte) { m.inner.Feed(payloads...) }

// Run executes the program to completion or abort. Run must be called at
// most once per Machine.
func (m *Machine) Run() *Result { return m.inner.Run() }

// Output returns lines printed by the program via print_int/print_str.
func (m *Machine) Output() []string { return m.inner.Output() }

// SanitizerName returns the attached sanitizer's name.
func (m *Machine) SanitizerName() string { return m.inner.Runtime().Name() }

// CoreRuntime returns the underlying CECSan runtime for white-box
// inspection (metadata table statistics), or nil when another sanitizer is
// attached.
func (m *Machine) CoreRuntime() *core.Runtime {
	if r, ok := m.inner.Runtime().(*core.Runtime); ok {
		return r
	}
	return nil
}

// Run is the one-shot convenience: instrument, execute, return the result.
func Run(p *prog.Program, cfg Config) (*Result, error) {
	eng, err := engineFor(cfg)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(p, cfg.Inputs...)
	if err != nil {
		return nil, fmt.Errorf("cecsan: %w", err)
	}
	return res, nil
}

// Instrument exposes the compiled (instrumented) form of a program under a
// sanitizer's profile, for inspection and tooling. Only the profile is
// consulted; no runtime is constructed.
func Instrument(p *prog.Program, sanitizer string) (*prog.Program, error) {
	eng, err := engine.New(sanitizers.Name(sanitizer), engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("cecsan: %w", err)
	}
	return eng.Instrument(p), nil
}
