package prog

import (
	"testing"
	"testing/quick"
)

func TestScalarSizes(t *testing.T) {
	tests := []struct {
		ty        *Type
		wantSize  int64
		wantAlign int64
	}{
		{Char(), 1, 1},
		{Short(), 2, 2},
		{Int(), 4, 4},
		{Int64T(), 8, 8},
		{WChar(), 4, 4}, // Linux wchar_t
		{VoidPtr(), 8, 8},
		{PtrTo(Int()), 8, 8},
	}
	for _, tt := range tests {
		if tt.ty.Size() != tt.wantSize || tt.ty.Align() != tt.wantAlign {
			t.Errorf("%s: size=%d align=%d, want %d/%d", tt.ty, tt.ty.Size(), tt.ty.Align(), tt.wantSize, tt.wantAlign)
		}
	}
}

func TestArrayOf(t *testing.T) {
	a := ArrayOf(Int(), 10)
	if a.Size() != 40 || a.Align() != 4 || a.Len() != 10 || a.Elem() != Int() {
		t.Fatalf("int[10]: %+v", a)
	}
	if a.Kind() != KindArray || !a.IsComposite() {
		t.Fatal("array kind/composite misreported")
	}
	if a.String() != "int[10]" {
		t.Fatalf("name = %q", a.String())
	}
}

func TestArrayOfRejectsNonPositiveLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ArrayOf(Char(), 0) did not panic")
		}
	}()
	ArrayOf(Char(), 0)
}

// TestStructLayoutMatchesSysV checks natural-alignment layout against
// hand-computed x86-64 SysV offsets, including the paper's Figure 3 struct.
func TestStructLayoutMatchesSysV(t *testing.T) {
	tests := []struct {
		name        string
		ty          *Type
		wantSize    int64
		wantOffsets []int64
	}{
		{
			name: "figure 3 CharVoid",
			ty: StructOf("CharVoid",
				FieldSpec{"charFirst", ArrayOf(Char(), 16)},
				FieldSpec{"voidSecond", VoidPtr()},
			),
			wantSize:    24,
			wantOffsets: []int64{0, 16},
		},
		{
			name: "padding between char and int",
			ty: StructOf("S",
				FieldSpec{"c", Char()},
				FieldSpec{"i", Int()},
				FieldSpec{"c2", Char()},
			),
			wantSize:    12, // 0,4..8,8; padded to align 4
			wantOffsets: []int64{0, 4, 8},
		},
		{
			name: "tail padding to 8",
			ty: StructOf("T",
				FieldSpec{"p", VoidPtr()},
				FieldSpec{"c", Char()},
			),
			wantSize:    16,
			wantOffsets: []int64{0, 8},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.ty.Size() != tt.wantSize {
				t.Errorf("size = %d, want %d\n%s", tt.ty.Size(), tt.wantSize, tt.ty.layoutString())
			}
			for i, f := range tt.ty.Fields() {
				if f.Offset != tt.wantOffsets[i] {
					t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, tt.wantOffsets[i])
				}
			}
		})
	}
}

func TestStructOfRejectsDuplicateFields(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate field did not panic")
		}
	}()
	StructOf("D", FieldSpec{"x", Int()}, FieldSpec{"x", Char()})
}

func TestFieldByName(t *testing.T) {
	st := StructOf("S", FieldSpec{"a", Int()}, FieldSpec{"b", Char()})
	f, ok := st.FieldByName("b")
	if !ok || f.Offset != 4 || f.Type != Char() {
		t.Fatalf("FieldByName(b) = %+v, %v", f, ok)
	}
	if _, ok := st.FieldByName("zzz"); ok {
		t.Fatal("FieldByName found a nonexistent field")
	}
}

func TestSubObjectsRecursion(t *testing.T) {
	inner := StructOf("Inner", FieldSpec{"x", Int()}, FieldSpec{"buf", ArrayOf(Char(), 8)})
	outer := StructOf("Outer",
		FieldSpec{"hdr", inner},
		FieldSpec{"tail", Int64T()},
	)
	subs := outer.SubObjects()
	want := map[string]int64{
		"hdr":     0,
		"hdr.x":   0,
		"hdr.buf": 4,
		"tail":    16,
	}
	if len(subs) != len(want) {
		t.Fatalf("got %d sub-objects, want %d: %+v", len(subs), len(want), subs)
	}
	for _, s := range subs {
		if off, ok := want[s.Path]; !ok || off != s.Offset {
			t.Errorf("sub-object %q offset %d, want %v", s.Path, s.Offset, want[s.Path])
		}
	}
	if got := Int().SubObjects(); got != nil {
		t.Fatalf("scalar SubObjects = %v, want nil", got)
	}
}

// TestStructInvariantsProperty checks layout invariants over random structs:
// fields are in-bounds, aligned, non-overlapping, and the size covers them.
func TestStructInvariantsProperty(t *testing.T) {
	scalars := []*Type{Char(), Short(), Int(), Int64T(), VoidPtr(), ArrayOf(Char(), 3), ArrayOf(Int(), 5)}
	prop := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 12 {
			picks = picks[:12]
		}
		specs := make([]FieldSpec, len(picks))
		for i, p := range picks {
			specs[i] = FieldSpec{Name: string(rune('a' + i)), Type: scalars[int(p)%len(scalars)]}
		}
		st := StructOf("R", specs...)
		var prevEnd int64
		for _, f := range st.Fields() {
			if f.Offset < prevEnd {
				return false // overlap
			}
			if f.Offset%f.Type.Align() != 0 {
				return false // misaligned
			}
			prevEnd = f.Offset + f.Type.Size()
		}
		return st.Size() >= prevEnd && st.Size()%st.Align() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
