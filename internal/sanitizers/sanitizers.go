// Package sanitizers is the registry of every sanitizer bundle in the
// repository: CECSan itself plus the comparators of Table II and the
// performance baselines of Tables IV and V.
package sanitizers

import (
	"fmt"

	"cecsan/internal/core"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers/asan"
	"cecsan/internal/sanitizers/asanlite"
	"cecsan/internal/sanitizers/cryptsan"
	"cecsan/internal/sanitizers/hwasan"
	"cecsan/internal/sanitizers/nosan"
	"cecsan/internal/sanitizers/pacmem"
	"cecsan/internal/sanitizers/softbound"
)

// Name identifies a sanitizer in the registry.
type Name string

// Registry names.
const (
	Native    Name = "native"
	CECSan    Name = "CECSan"
	ASan      Name = "ASan"
	ASanLite  Name = "ASAN--"
	HWASan    Name = "HWASan"
	SoftBound Name = "SoftBound/CETS"
	PACMem    Name = "PACMem"
	CryptSan  Name = "CryptSan"

	// Temporally hardened CECSan-family variants: the same runtimes with
	// generation-stamped metadata entries, delayed index reuse and the
	// address quarantine (core.Harden). They are deliberately NOT part of
	// All() — Table II and the default fuzz campaign keep comparing the
	// paper's configurations — and are selected explicitly via flags or
	// Hardened().
	CECSanHardened   Name = "CECSan-hardened"
	PACMemHardened   Name = "PACMem-hardened"
	CryptSanHardened Name = "CryptSan-hardened"
)

// All lists the registry names in Table II column order (native first).
func All() []Name {
	return []Name{Native, CECSan, PACMem, CryptSan, HWASan, ASan, ASanLite, SoftBound}
}

// Hardened maps a CECSan-family sanitizer to its temporally hardened
// variant; ok is false for tools with no such variant (their temporal
// behaviour has no tag-index reuse window to close).
func Hardened(n Name) (Name, bool) {
	switch n {
	case CECSan:
		return CECSanHardened, true
	case PACMem:
		return PACMemHardened, true
	case CryptSan:
		return CryptSanHardened, true
	}
	return n, false
}

// Base maps a hardened registry name back to its default-profile base —
// the bottom rung of the serving degradation ladder. ok is false for names
// that are not hardened variants (they have nothing to step down to).
func Base(n Name) (Name, bool) {
	switch n {
	case CECSanHardened:
		return CECSan, true
	case PACMemHardened:
		return PACMem, true
	case CryptSanHardened:
		return CryptSan, true
	}
	return n, false
}

// ProfileFor returns the instrumentation profile a sanitizer would use,
// without constructing its runtime. Profiles are cheap static descriptions;
// runtimes allocate real state (CECSan's metadata table alone is megabytes),
// so callers that only decide how to instrument — the execution engine, the
// cycle model — fetch the profile here.
func ProfileFor(name Name) (rt.Profile, error) {
	switch name {
	case Native:
		return nosan.ProfileFor(), nil
	case CECSan:
		return core.ProfileFor(core.DefaultOptions()), nil
	case ASan:
		return asan.ProfileFor(asan.DefaultOptions()), nil
	case ASanLite:
		return asanlite.ProfileFor(), nil
	case HWASan:
		return hwasan.ProfileFor(), nil
	case SoftBound:
		return softbound.ProfileFor(), nil
	case PACMem:
		return pacmem.ProfileFor(), nil
	case CryptSan:
		return cryptsan.ProfileFor(), nil
	case CECSanHardened:
		return core.ProfileFor(core.HardenedOptions()), nil
	case PACMemHardened:
		return pacmem.HardenedProfileFor(), nil
	case CryptSanHardened:
		return cryptsan.HardenedProfileFor(), nil
	default:
		return rt.Profile{}, fmt.Errorf("sanitizers: unknown sanitizer %q", name)
	}
}

// NewSeeded constructs a fresh sanitizer bundle with every RNG-bearing
// runtime seeded from seed, making runs reproducible end-to-end. Only
// HWASan draws randomness (its tag RNG); seed 0 selects the stock stream,
// so NewSeeded(name, 0) is New(name).
func NewSeeded(name Name, seed uint64) (rt.Sanitizer, error) {
	if name == HWASan && seed != 0 {
		return hwasan.Sanitizer(seed), nil
	}
	return New(name)
}

// New constructs a fresh sanitizer bundle. Every call returns an
// independent runtime: bundles are single-machine, like a process's
// sanitizer runtime.
func New(name Name) (rt.Sanitizer, error) {
	switch name {
	case Native:
		return nosan.Sanitizer(), nil
	case CECSan:
		return core.Sanitizer(core.DefaultOptions())
	case ASan:
		return asan.Sanitizer(asan.DefaultOptions()), nil
	case ASanLite:
		return asanlite.Sanitizer(), nil
	case HWASan:
		return hwasan.Sanitizer(1), nil
	case SoftBound:
		return softbound.Sanitizer(), nil
	case PACMem:
		return pacmem.Sanitizer()
	case CryptSan:
		return cryptsan.Sanitizer()
	case CECSanHardened:
		return core.Sanitizer(core.HardenedOptions())
	case PACMemHardened:
		return pacmem.HardenedSanitizer()
	case CryptSanHardened:
		return cryptsan.HardenedSanitizer()
	default:
		return rt.Sanitizer{}, fmt.Errorf("sanitizers: unknown sanitizer %q", name)
	}
}
