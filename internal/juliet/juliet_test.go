package juliet

import (
	"testing"

	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

func TestTableICounts(t *testing.T) {
	counts := TableI()
	total := 0
	for _, cwe := range AllCWEs() {
		n, ok := counts[cwe]
		if !ok || n <= 0 {
			t.Fatalf("no count for %v", cwe)
		}
		total += n
	}
	if total != TotalCases {
		t.Fatalf("TableI total = %d, want %d", total, TotalCases)
	}
}

func TestGenerateExactCountsAndUniqueIDs(t *testing.T) {
	for _, cwe := range AllCWEs() {
		n := 64
		cases, err := Generate(cwe, n)
		if err != nil {
			t.Fatalf("Generate(%v): %v", cwe, err)
		}
		if len(cases) != n {
			t.Fatalf("%v: got %d cases, want %d", cwe, len(cases), n)
		}
		ids := make(map[string]bool, n)
		for _, cs := range cases {
			if ids[cs.ID] {
				t.Fatalf("%v: duplicate case ID %q", cwe, cs.ID)
			}
			ids[cs.ID] = true
			if cs.Good == nil || cs.Bad == nil {
				t.Fatalf("%s: missing program", cs.ID)
			}
			if cs.CWE != cwe {
				t.Fatalf("%s: CWE mismatch", cs.ID)
			}
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, err := Generate(CWE122, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(CWE122, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("case %d: ID %q != %q", i, a[i].ID, b[i].ID)
		}
		if a[i].Good.Funcs["main"].Dump() != b[i].Good.Funcs["main"].Dump() {
			t.Fatalf("case %d: non-deterministic program body", i)
		}
	}
}

func TestAttributesAssigned(t *testing.T) {
	cases, err := Generate(CWE122, 400)
	if err != nil {
		t.Fatal(err)
	}
	var wide, sub, input int
	for _, cs := range cases {
		if cs.Wide {
			wide++
		}
		if cs.SubObject {
			sub++
		}
		if cs.NeedsInput {
			input++
		}
	}
	if wide == 0 || sub == 0 || input == 0 {
		t.Fatalf("attribute starvation: wide=%d sub=%d input=%d", wide, sub, input)
	}
	// Input-dependent cases must carry payloads for the bad version.
	for _, cs := range cases {
		if cs.NeedsInput && len(cs.BadInputs) == 0 {
			t.Fatalf("%s: NeedsInput without payloads", cs.ID)
		}
	}
}

func TestSubsets(t *testing.T) {
	cases, err := Generate(CWE121, 600)
	if err != nil {
		t.Fatal(err)
	}
	var pac, crypt, sb int
	for _, cs := range cases {
		if SubsetPACMem(cs) {
			pac++
		}
		if SubsetCryptSan(cs) {
			crypt++
		}
		if SubsetSoftBound(cs) {
			sb++
		}
	}
	if !(sb < crypt && crypt < pac && pac < 600) {
		t.Fatalf("subset sizes not ordered: sb=%d crypt=%d pac=%d of 600", sb, crypt, pac)
	}
}

// run executes one program+inputs under one sanitizer and reports detection.
func run(t *testing.T, p *prog.Program, inputs [][]byte, name sanitizers.Name) (detected bool, res *interp.Result) {
	t.Helper()
	san, err := sanitizers.New(name)
	if err != nil {
		t.Fatalf("sanitizers.New(%s): %v", name, err)
	}
	ip := instrument.Apply(p, san.Profile)
	m, err := interp.New(ip, san, interp.DefaultOptions())
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	for _, in := range inputs {
		m.Feed(in)
	}
	res = m.Run()
	if res.Err != nil {
		t.Fatalf("%s: execution error: %v", name, res.Err)
	}
	return res.Violation != nil || res.Fault != nil, res
}

// TestCECSanPerfectOnSample is the heart of Table II's CECSan column: on a
// stratified sample of every CWE, CECSan detects every bad version and
// reports nothing on any good version.
func TestCECSanPerfectOnSample(t *testing.T) {
	for _, cwe := range AllCWEs() {
		cases, err := Generate(cwe, 160)
		if err != nil {
			t.Fatalf("Generate(%v): %v", cwe, err)
		}
		for _, cs := range cases {
			if det, res := run(t, cs.Bad, cs.BadInputs, sanitizers.CECSan); !det {
				t.Errorf("%s: bad version not detected (%+v)", cs.ID, res.Stats)
			}
			if det, res := run(t, cs.Good, cs.GoodInputs, sanitizers.CECSan); det {
				t.Errorf("%s: FALSE POSITIVE on good version: %v%v", cs.ID, res.Violation, res.Fault)
			}
		}
	}
}

// TestNoFalsePositivesOnSample: the good versions must be clean under every
// comparator except the deliberately flawed SoftBound prototype model.
func TestNoFalsePositivesOnSample(t *testing.T) {
	sans := []sanitizers.Name{sanitizers.ASan, sanitizers.ASanLite, sanitizers.HWASan, sanitizers.PACMem, sanitizers.CryptSan}
	for _, cwe := range AllCWEs() {
		cases, err := Generate(cwe, 60)
		if err != nil {
			t.Fatalf("Generate(%v): %v", cwe, err)
		}
		for _, cs := range cases {
			for _, name := range sans {
				if det, res := run(t, cs.Good, cs.GoodInputs, name); det {
					t.Errorf("%s under %s: FALSE POSITIVE: %v%v", cs.ID, name, res.Violation, res.Fault)
				}
			}
		}
	}
}

// TestComparatorsMissTheirBlindSpots spot-checks that the per-design gaps
// actually appear in generated cases (Table II's mechanism).
func TestComparatorsMissTheirBlindSpots(t *testing.T) {
	cases, err := Generate(CWE122, 400)
	if err != nil {
		t.Fatal(err)
	}
	missed := map[sanitizers.Name]int{}
	for _, cs := range cases {
		for _, name := range []sanitizers.Name{sanitizers.ASan, sanitizers.HWASan, sanitizers.PACMem} {
			if det, _ := run(t, cs.Bad, cs.BadInputs, name); !det {
				missed[name]++
			}
		}
	}
	if missed[sanitizers.ASan] == 0 {
		t.Error("ASan missed nothing on CWE122; sub-object/wide/stride shapes not working")
	}
	if missed[sanitizers.HWASan] == 0 {
		t.Error("HWASan missed nothing on CWE122")
	}
	if missed[sanitizers.PACMem] == 0 {
		t.Error("PACMem missed nothing on CWE122 (sub-object cases absent?)")
	}
	if missed[sanitizers.PACMem] >= missed[sanitizers.ASan] {
		t.Errorf("PACMem (%d) should miss fewer than ASan (%d)", missed[sanitizers.PACMem], missed[sanitizers.ASan])
	}
}

// TestHWASanMissesAllInvalidFrees pins the CWE761 = 0% row.
func TestHWASanMissesAllInvalidFrees(t *testing.T) {
	cases, err := Generate(CWE761, 120)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range cases {
		if det, res := run(t, cs.Bad, cs.BadInputs, sanitizers.HWASan); det {
			t.Errorf("%s: HWASan detected an invalid free (%v) — CWE761 must be 0%%", cs.ID, res.Violation)
		}
	}
}
