package harness

import (
	"strings"
	"testing"

	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
	"cecsan/internal/specsim"
)

func TestModelCyclesArithmetic(t *testing.T) {
	s := interp.Stats{Instructions: 1000, ChecksExecuted: 100, Mallocs: 10, Frees: 10}
	native := ModelCycles(s, CostModel{})
	// 900 plain ops + 100 checks at cost 1 + 20 allocator ops at 60.
	if want := 900.0 + 100 + 20*60; native != want {
		t.Fatalf("native cycles = %v, want %v", native, want)
	}
	asan := ModelCycles(s, CostModels()[sanitizers.ASan])
	if asan <= native {
		t.Fatal("ASan model not more expensive than native")
	}
}

func TestCostModelsCoverAllSanitizers(t *testing.T) {
	models := CostModels()
	for _, name := range sanitizers.All() {
		if _, ok := models[name]; !ok {
			t.Errorf("no cost model for %s", name)
		}
	}
}

// TestCycleModelReproducesPaperOrdering is the quantitative heart of the
// Table IV reproduction: under the documented cost model, CECSan's runtime
// overhead exceeds ASan's overall (the paper's headline), while the
// allocation-heavy workloads cross over in CECSan's favour — exactly the
// two benchmarks (perlbench, omnetpp) the paper singles out.
func TestCycleModelReproducesPaperOrdering(t *testing.T) {
	ws := specsim.Smoke()
	tools := []sanitizers.Name{sanitizers.ASan, sanitizers.CECSan}
	table, err := EvaluateCycles(ws, tools)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatCycleTable(table))

	byName := map[string]CycleRow{}
	for _, r := range table.Rows {
		byName[r.Benchmark] = r
	}
	// Headline: CECSan slower than ASan on average (paper: 189.7% vs 109.4%).
	if table.Average(sanitizers.CECSan) <= table.Average(sanitizers.ASan) {
		t.Errorf("modelled CECSan average (%.1f%%) not above ASan (%.1f%%)",
			table.Average(sanitizers.CECSan), table.Average(sanitizers.ASan))
	}
	// Deref-heavy rows: CECSan pays much more (paper mcf: 174.8%% vs 60.5%).
	if r := byName["smoke.mcf"]; r.OverheadPct[sanitizers.CECSan] <= r.OverheadPct[sanitizers.ASan] {
		t.Errorf("mcf: CECSan %.1f%% not above ASan %.1f%%",
			r.OverheadPct[sanitizers.CECSan], r.OverheadPct[sanitizers.ASan])
	}
	// Alloc-heavy crossovers (paper: perlbench 277%% vs 307%, omnetpp 106.8%
	// vs 144.9%).
	for _, b := range []string{"smoke.perlbench", "smoke.omnetpp"} {
		if r := byName[b]; r.OverheadPct[sanitizers.CECSan] >= r.OverheadPct[sanitizers.ASan] {
			t.Errorf("%s: CECSan %.1f%% not below ASan %.1f%% (crossover lost)",
				b, r.OverheadPct[sanitizers.CECSan], r.OverheadPct[sanitizers.ASan])
		}
	}
}

func TestFormatCycleTable(t *testing.T) {
	table, err := EvaluateCycles(specsim.Smoke()[:2], []sanitizers.Name{sanitizers.CECSan})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCycleTable(table)
	for _, want := range []string{"cycle model", "CECSan", "Average", "Geometric Mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatCycleTable missing %q:\n%s", want, out)
		}
	}
}

// TestEvaluatePerfSmoke exercises the wall-clock perf path end to end.
func TestEvaluatePerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	ws := specsim.Smoke()[:3]
	table, err := EvaluatePerf(ws, []sanitizers.Name{sanitizers.CECSan}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
	out := FormatTable4(table)
	if !strings.Contains(out, "Geometric Mean") {
		t.Fatalf("FormatTable4 incomplete:\n%s", out)
	}
	out5 := FormatTable5(table)
	if !strings.Contains(out5, "Runtime Overhead") {
		t.Fatalf("FormatTable5 incomplete:\n%s", out5)
	}
}
