package engine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cecsan/csrc"
	"cecsan/internal/faultinject"
	"cecsan/internal/instrument"
	"cecsan/internal/interp"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

func compileSrc(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := csrc.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

const normalSrc = `func main() {
	var p = malloc(64);
	p[0] = 7;
	var s = p[0];
	free(p);
	return s;
}`

const loopSrc = `func main() {
	var x = 1;
	while (x) { x = x + 1; }
	return x;
}`

// TestFaultIsolationBatch is the headline acceptance scenario: a 50-case
// batch where one case panics inside the runtime (injected) and one spins
// forever. All 50 must come back classified — 48 clean, one FaultPanic, one
// FaultStepBudget — and the engine must stay healthy afterwards.
func TestFaultIsolationBatch(t *testing.T) {
	normal := compileSrc(t, normalSrc)
	panicky := compileSrc(t, `func main() {
		var a = malloc(32);
		var b = malloc(32);
		a[0] = 1;
		return b[0];
	}`)
	looper := compileSrc(t, loopSrc)
	panicFP := panicky.Fingerprint()

	eng, err := New(sanitizers.CECSan, Options{
		MaxInstructions: 200_000,
		FaultPlanFor: func(fp prog.Fingerprint) faultinject.Plan {
			if fp == panicFP {
				return faultinject.Plan{MallocPanicNth: 2}
			}
			return faultinject.Plan{}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const n = 50
	const panicIdx, loopIdx = 7, 23
	results := make([]*interp.Result, n)
	err = eng.ForEach(n, func(i int) error {
		p := normal
		switch i {
		case panicIdx:
			p = panicky
		case loopIdx:
			p = looper
		}
		res, rerr := eng.Run(p)
		if rerr != nil {
			return rerr
		}
		results[i] = res
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}

	var clean, panics, stepBudget int
	for i, res := range results {
		if res == nil {
			t.Fatalf("case %d: no result", i)
		}
		fo := AsFault(res.Err)
		switch {
		case fo == nil && res.Err == nil && res.Violation == nil:
			clean++
		case fo != nil && fo.Class == FaultPanic:
			panics++
			if i != panicIdx {
				t.Errorf("case %d: unexpected panic fault %v", i, fo)
			}
			if !strings.Contains(fo.PanicValue, faultinject.PanicValue) {
				t.Errorf("panic value = %q, want injected marker", fo.PanicValue)
			}
			if !fo.Deterministic {
				t.Errorf("injected panic not classified deterministic: %+v", fo)
			}
		case fo != nil && fo.Class == FaultStepBudget:
			stepBudget++
			if i != loopIdx {
				t.Errorf("case %d: unexpected step-budget fault", i)
			}
			if !fo.Deterministic {
				t.Errorf("step-budget fault not deterministic: %+v", fo)
			}
		default:
			t.Errorf("case %d: unclassified outcome err=%v violation=%v", i, res.Err, res.Violation)
		}
	}
	if clean != n-2 || panics != 1 || stepBudget != 1 {
		t.Fatalf("classified %d clean, %d panic, %d step-budget; want %d/1/1",
			clean, panics, stepBudget, n-2)
	}

	s := eng.Stats()
	if s.Faults < 2 {
		t.Errorf("Stats.Faults = %d, want >= 2", s.Faults)
	}
	if s.FaultsDeterministic < 2 {
		t.Errorf("Stats.FaultsDeterministic = %d, want >= 2 (panic + step budget)", s.FaultsDeterministic)
	}
	if s.InjectedFaults < 1 {
		t.Errorf("Stats.InjectedFaults = %d, want >= 1", s.InjectedFaults)
	}

	// The pools survived the hostile cases: a fresh clean run still matches
	// the never-pooled pipeline.
	res, rerr := eng.Run(normal)
	if rerr != nil || res.Err != nil || res.Violation != nil {
		t.Fatalf("post-batch clean run: res=%+v err=%v", res, rerr)
	}
	if want := uncachedRun(t, sanitizers.CECSan, normal, nil); res.Ret != want.Ret {
		t.Fatalf("post-batch Ret = %d, want %d", res.Ret, want.Ret)
	}
}

// TestMetatableClampDegradation pins the §V graceful-degradation contract:
// with the table clamped to 4 entries, allocations 5 and 6 still succeed —
// untagged, validating through reserved entry 0 — loads and stores through
// them work, and the lost coverage is counted.
func TestMetatableClampDegradation(t *testing.T) {
	p := compileSrc(t, `func main() {
		var a = malloc(16);
		var b = malloc(16);
		var c = malloc(16);
		var d = malloc(16);
		var e = malloc(16);
		var f = malloc(16);
		a[0] = 1; b[0] = 1; c[0] = 1; d[0] = 1;
		e[0] = 7;
		f[0] = 35;
		return e[0] + f[0];
	}`)
	fp := p.Fingerprint()
	eng, err := New(sanitizers.CECSan, Options{
		FaultPlanFor: func(got prog.Fingerprint) faultinject.Plan {
			if got == fp {
				return faultinject.Plan{MetatableCap: 4}
			}
			return faultinject.Plan{}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, rerr := eng.Run(p)
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	if res.Err != nil || res.Violation != nil {
		t.Fatalf("degraded run did not stay functional: err=%v violation=%v", res.Err, res.Violation)
	}
	if res.Ret != 42 {
		t.Fatalf("Ret = %d, want 42 (stores/loads through untagged pointers)", res.Ret)
	}
	if res.Stats.DegradedAllocs != 2 {
		t.Fatalf("Stats.DegradedAllocs = %d, want 2", res.Stats.DegradedAllocs)
	}
	if s := eng.Stats(); s.DegradedAllocs != 2 {
		t.Fatalf("engine Stats.DegradedAllocs = %d, want 2", s.DegradedAllocs)
	}
}

// TestFaultRetryPoolSuspect exercises the retry protocol's other verdict: a
// panic that fires on a recycled runtime but not on the fresh retry is
// attributed to pool state, and the retry's clean result is returned.
func TestFaultRetryPoolSuspect(t *testing.T) {
	warm := compileSrc(t, normalSrc)
	target := compileSrc(t, `func main() {
		var q = malloc(48);
		q[1] = 2;
		return q[1];
	}`)
	targetFP := target.Fingerprint()

	var fired atomic.Bool
	eng, err := New(sanitizers.CECSan, Options{
		FaultPlanFor: func(fp prog.Fingerprint) faultinject.Plan {
			if fp == targetFP && fired.CompareAndSwap(false, true) {
				return faultinject.Plan{MallocPanicNth: 1}
			}
			return faultinject.Plan{}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Warm the pools so the target case runs on recycled state.
	if _, err := eng.Run(warm); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	res, rerr := eng.Run(target)
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	if res.Err != nil || res.Violation != nil {
		t.Fatalf("retry result not clean: err=%v violation=%v", res.Err, res.Violation)
	}
	if res.Ret != 2 {
		t.Fatalf("Ret = %d, want 2", res.Ret)
	}
	s := eng.Stats()
	if s.FaultRetries != 1 {
		t.Errorf("Stats.FaultRetries = %d, want 1", s.FaultRetries)
	}
	if s.FaultsPoolSuspect != 1 {
		t.Errorf("Stats.FaultsPoolSuspect = %d, want 1", s.FaultsPoolSuspect)
	}
	if s.FaultsDeterministic != 0 {
		t.Errorf("Stats.FaultsDeterministic = %d, want 0", s.FaultsDeterministic)
	}
}

// TestFaultRetryReproduces pins the deterministic verdict: a panic that
// reproduces on the fresh retry is the case's own fault, marked Retried and
// Deterministic.
func TestFaultRetryReproduces(t *testing.T) {
	warm := compileSrc(t, normalSrc)
	target := compileSrc(t, `func main() {
		var q = malloc(48);
		q[2] = 3;
		return q[2];
	}`)
	targetFP := target.Fingerprint()
	eng, err := New(sanitizers.CECSan, Options{
		FaultPlanFor: func(fp prog.Fingerprint) faultinject.Plan {
			if fp == targetFP {
				return faultinject.Plan{MallocPanicNth: 1}
			}
			return faultinject.Plan{}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.Run(warm); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	res, rerr := eng.Run(target)
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	fo := AsFault(res.Err)
	if fo == nil || fo.Class != FaultPanic {
		t.Fatalf("err = %v, want FaultPanic outcome", res.Err)
	}
	if !fo.Retried || !fo.Deterministic {
		t.Fatalf("fault = %+v, want Retried and Deterministic", fo)
	}
	s := eng.Stats()
	if s.FaultRetries != 1 {
		t.Errorf("Stats.FaultRetries = %d, want 1", s.FaultRetries)
	}
	if s.FaultsPoolSuspect != 0 {
		t.Errorf("Stats.FaultsPoolSuspect = %d, want 0", s.FaultsPoolSuspect)
	}
	if s.FaultsDeterministic != 1 {
		t.Errorf("Stats.FaultsDeterministic = %d, want 1", s.FaultsDeterministic)
	}
}

// TestWallBudgetFault drives the watchdog: an unbounded loop under a small
// wall budget is interrupted and classified FaultWallBudget.
func TestWallBudgetFault(t *testing.T) {
	looper := compileSrc(t, loopSrc)
	eng, err := New(sanitizers.CECSan, Options{WallBudget: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, rerr := eng.Run(looper)
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	fo := AsFault(res.Err)
	if fo == nil || fo.Class != FaultWallBudget {
		t.Fatalf("err = %v, want FaultWallBudget outcome", res.Err)
	}
	if !errors.Is(res.Err, interp.ErrWallBudget) {
		t.Fatalf("fault does not unwrap to ErrWallBudget: %v", res.Err)
	}
}

// TestHeapBudgetFault bounds live simulated heap: a leak loop trips the
// budget and is classified FaultHeapBudget.
func TestHeapBudgetFault(t *testing.T) {
	leaker := compileSrc(t, `func main() {
		var x = 1;
		while (x) { var t = malloc(4096); t[0] = x; }
		return 0;
	}`)
	eng, err := New(sanitizers.CECSan, Options{HeapBudget: 1 << 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, rerr := eng.Run(leaker)
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	fo := AsFault(res.Err)
	if fo == nil || fo.Class != FaultHeapBudget {
		t.Fatalf("err = %v, want FaultHeapBudget outcome", res.Err)
	}
	if !fo.Deterministic {
		t.Fatalf("heap-budget fault not deterministic: %+v", fo)
	}
}

// TestMaxCallDepthOption plumbs Options.MaxCallDepth through to the
// interpreter: recursion deeper than the limit aborts with ErrCallDepth.
func TestMaxCallDepthOption(t *testing.T) {
	deep := compileSrc(t, `func down(n) {
		if (n <= 0) { return 0; }
		return down(n - 1);
	}
	func main() { return down(100); }`)
	eng, err := New(sanitizers.CECSan, Options{MaxCallDepth: 10})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, rerr := eng.Run(deep)
	if rerr != nil {
		t.Fatalf("Run: %v", rerr)
	}
	if !errors.Is(res.Err, interp.ErrCallDepth) {
		t.Fatalf("err = %v, want ErrCallDepth", res.Err)
	}
	// A permissive limit lets the same program complete.
	eng2, err := New(sanitizers.CECSan, Options{MaxCallDepth: 200})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res2, rerr := eng2.Run(deep)
	if rerr != nil || res2.Err != nil {
		t.Fatalf("deep run under generous limit: res=%+v err=%v", res2, rerr)
	}
}

// TestPooledResetAfterInjectedFault pins the pool-hygiene contract behind
// recycling: after a run whose heap and space hooks injected faults
// mid-execution, Resources.Reset restores state byte-identical to fresh
// construction — same results, and no hook left armed.
func TestPooledResetAfterInjectedFault(t *testing.T) {
	p := compileSrc(t, normalSrc)
	opts := interp.DefaultOptions()
	san, err := sanitizers.New(sanitizers.CECSan)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ip := instrument.Apply(p, san.Profile)

	dirty, err := interp.NewResources(opts.AddrBits)
	if err != nil {
		t.Fatalf("NewResources: %v", err)
	}
	// An always-fail hook: the run dies on its first allocation.
	alwaysOOM := func() error { return faultinject.ErrInjectedOOM }
	dirty.Heap.SetFaultHook(alwaysOOM)
	m, err := interp.NewOn(dirty, ip, san, opts)
	if err != nil {
		t.Fatalf("NewOn: %v", err)
	}
	if res := m.Run(); !errors.Is(res.Err, faultinject.ErrInjectedOOM) {
		t.Fatalf("faulted run err = %v, want ErrInjectedOOM", res.Err)
	}
	dirty.Reset()

	fresh, err := interp.NewResources(opts.AddrBits)
	if err != nil {
		t.Fatalf("NewResources: %v", err)
	}
	run := func(res *interp.Resources) *interp.Result {
		s, err := sanitizers.New(sanitizers.CECSan)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m, err := interp.NewOn(res, ip, s, opts)
		if err != nil {
			t.Fatalf("NewOn: %v", err)
		}
		return m.Run()
	}
	got, want := run(dirty), run(fresh)
	if got.Err != nil || got.Violation != nil {
		t.Fatalf("post-Reset run not clean: err=%v violation=%v (hook leaked through Reset?)", got.Err, got.Violation)
	}
	if got.Ret != want.Ret || got.Stats != want.Stats {
		t.Fatalf("post-Reset run differs from fresh resources:\n got %+v %+v\nwant %+v %+v",
			got.Ret, got.Stats, want.Ret, want.Stats)
	}
}
