// Package obs is the repository's unified observability layer: a metrics
// registry (counters, gauges, log-bucketed histograms) with lock-free
// hot-path recording and JSON + Prometheus-text exposition, a check-site
// profiler attributing executed sanitizer checks to their static sites, a
// Chrome trace_event span recorder for flame-chart inspection of the engine
// pipeline, and a live HTTP introspection endpoint (metric snapshots plus
// net/http/pprof) for watching long-running campaigns without stopping them.
//
// The package is dependency-free within the repository: everything else
// (engine, interp, harness, fuzz, cliutil, the cmd/ tools) imports obs,
// never the reverse. Observability is strictly off the report path — the
// layer only ever *reads* execution state, so differential fuzz reports and
// the Table II output are byte-identical whether an Observer is attached or
// not (pinned by TestFuzzReportByteIdentity / TestTable2ByteIdentity).
package obs

import "sync/atomic"

// Observer bundles the observability facilities a consumer can attach to
// the execution pipeline. Registry and Health are always present; Tracer
// and Sites are nil unless the corresponding flag (-trace, -profile-checks)
// enabled them, so their costs — span recording, per-check timing — are
// strictly opt-in.
type Observer struct {
	// Registry holds the metric instruments. Never nil on an Observer built
	// with New.
	Registry *Registry
	// Tracer records engine pipeline spans (instrument/execute/reset) for
	// Chrome trace_event export; nil disables span recording.
	Tracer *Tracer
	// Sites profiles executed checks per (sanitizer, check site); nil
	// disables the per-check timing instrumentation.
	Sites *SiteProfiler
	// Health backs the /healthz and /readyz endpoints. Never nil on an
	// Observer built with New; the serving layer flips readiness once its
	// cache prewarm completes.
	Health *Health
	// SLO, when the attached campaign declared objectives, backs the /slo
	// endpoint and the slo_* gauges.
	SLO *SLO
}

// New returns an Observer with a fresh Registry and Health, no tracer or
// site profiler. Callers enable those by assigning NewTracer /
// NewSiteProfiler.
func New() *Observer {
	return &Observer{Registry: NewRegistry(), Health: &Health{}}
}

// Health is the process's liveness/readiness state. Liveness is implicit
// (the endpoint answering is the signal); readiness is flipped by the
// consumer once it can usefully serve — the traffic layer sets it after the
// instrumentation-cache prewarm.
type Health struct {
	ready atomic.Bool
}

// SetReady flips the readiness state.
func (h *Health) SetReady(v bool) {
	if h != nil {
		h.ready.Store(v)
	}
}

// Ready reports the readiness state.
func (h *Health) Ready() bool { return h != nil && h.ready.Load() }
