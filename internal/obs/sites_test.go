package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSiteProfiler(t *testing.T) {
	p := NewSiteProfiler()
	cec := p.ForTool("CECSan")
	asan := p.ForTool("ASan")
	cec.ObserveCheck("main", 4, 8, 2*time.Microsecond)
	cec.ObserveCheck("main", 4, 8, 3*time.Microsecond)
	cec.ObserveCheck("helper", 9, 16, 10*time.Microsecond)
	asan.ObserveCheck("main", 4, 8, time.Microsecond)

	if got := p.TotalFires(); got != 4 {
		t.Fatalf("TotalFires = %d, want 4", got)
	}
	sites := p.Sites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(sites))
	}
	// Sorted by cumulative cost descending.
	if sites[0].Key != (SiteKey{Tool: "CECSan", Func: "helper", PC: 9}) {
		t.Fatalf("hottest site = %+v", sites[0].Key)
	}
	if sites[0].Cost != 10*time.Microsecond || sites[0].Fires != 1 || sites[0].Bytes != 16 {
		t.Fatalf("hottest stat = %+v", sites[0])
	}
	if sites[1].Fires != 2 || sites[1].Cost != 5*time.Microsecond {
		t.Fatalf("second site = %+v", sites[1])
	}

	var b strings.Builder
	p.FormatSites(&b, 2, 5)
	out := b.String()
	if !strings.Contains(out, "helper") || !strings.Contains(out, "... 1 more sites") {
		t.Fatalf("FormatSites top-2 output:\n%s", out)
	}
	if !strings.Contains(out, "attributed 4/5 checks (80.0%)") {
		t.Fatalf("FormatSites attribution footer:\n%s", out)
	}
}

func TestNilProfilerForTool(t *testing.T) {
	var p *SiteProfiler
	if ts := p.ForTool("CECSan"); ts != nil {
		t.Fatal("nil profiler must hand out a nil view")
	}
}
