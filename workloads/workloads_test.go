package workloads

import (
	"testing"

	"cecsan"
)

func TestJulietFacade(t *testing.T) {
	if got := len(JulietCWEs()); got != 8 {
		t.Fatalf("JulietCWEs = %d entries, want 8", got)
	}
	total := 0
	for _, n := range JulietTableI() {
		total += n
	}
	if total != 15752 {
		t.Fatalf("Table I total = %d, want 15752", total)
	}
	cases, err := GenerateJuliet(CWE122, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 10 {
		t.Fatalf("generated %d cases, want 10", len(cases))
	}
	// A generated case is directly runnable through the public API.
	res, err := cecsan.Run(cases[0].Bad, cecsan.Config{Inputs: cases[0].BadInputs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil && res.Fault == nil {
		t.Error("CECSan missed a bad case run through the facade")
	}
}

func TestFlawAndSpecFacades(t *testing.T) {
	if got := len(LinuxFlaws()); got != 10 {
		t.Fatalf("LinuxFlaws = %d, want 10", got)
	}
	if got := len(Spec2006()); got != 8 {
		t.Fatalf("Spec2006 = %d, want 8", got)
	}
	if got := len(Spec2017()); got != 10 {
		t.Fatalf("Spec2017 = %d, want 10", got)
	}
	if len(SpecSmoke()) == 0 {
		t.Fatal("SpecSmoke empty")
	}
	// A spec workload runs through the public API.
	p := SpecSmoke()[0].Build()
	res, err := cecsan.Run(p, cecsan.Config{Sanitizer: cecsan.Native})
	if err != nil || !res.Ok() {
		t.Fatalf("smoke workload failed: err=%v res=%+v", err, res)
	}
}
