// Package core implements the CECSan runtime: the paper's primary
// contribution. It combines the compact, reusable metadata table (§II.B,
// Figure 2), pointer tagging (via internal/tagptr), the optimized combined
// spatial+temporal dereference check (Algorithm 1), the deallocation check
// (Algorithm 2), sub-object bounds narrowing (§II.D), protection for stack
// and global objects (§II.C.3), and compatibility wrappers for external
// uninstrumented code (§II.E).
package core

import (
	"sync"
	"sync/atomic"

	"cecsan/internal/tagptr"
)

// Invalid is the "very high value" (§II.B.4) written into a freed entry's
// low bound. Any dereference through a dangling pointer then computes a
// negative low-bound difference, failing Algorithm 1's combined check. It is
// far above every mappable address.
const Invalid uint64 = 1 << 62

// reservedHigh is the upper bound of the reserved entry 0, "initialized as
// very high address" (§III), so that untagged/foreign pointers pass every
// check.
const reservedHigh uint64 = 1 << 62

// slotsPerEntry is the entry stride: (low bound, high bound, nextID), 24
// bytes per entry (§III).
const slotsPerEntry = 3

// EntryBytes is the metadata footprint of one table entry.
const EntryBytes = 8 * slotsPerEntry

// Table is the compact metadata table: a linear array of
// (low, high, nextID) entries indexed by a pointer's tag. Entry 0 is
// reserved for pointers of unknown provenance (§II.E). A free list is
// encoded inside the entries themselves via nextID offsets, with the global
// metadata index GMI as its head (§II.B.2, Figure 2), so freed entries are
// reused as early as possible.
//
// Writes (allocate/free) are serialized by a mutex, the paper's thread-safe
// GMI arrangement (§III). Checks read entries lock-free via atomic loads,
// which on x86-64 compile to the same plain loads the real runtime issues.
type Table struct {
	arch tagptr.Arch

	mu          sync.Mutex
	gmi         uint64 // current metadata table index (free-structure head)
	reserveLast bool   // final index reserved as the CHAINED tag
	clamp       uint64 // fault-injected capacity clamp (0 = none); cleared by Reset

	slots []atomic.Uint64 // 3 * 2^TagBits: low, high, nextID(two's complement)
	sub   []bool          // entry holds sub-object metadata (report classification only)

	live      int64
	highWater uint64 // largest index ever handed out + 1 (lazy-page RSS model)
	allocs    int64
	exhausted int64 // allocations that fell back to the reserved entry
}

// TableStats is a snapshot of table counters.
type TableStats struct {
	Live      int64
	HighWater uint64
	Allocs    int64
	Exhausted int64
	Capacity  uint64
}

// NewTable builds the table for an architecture: 2^TagBits entries
// (2^17 on x86-64, the prototype configuration). The constructor initializes
// every field to zero, sets the reserved entry's high bound to a very high
// address, and starts GMI at 1 (§III).
func NewTable(arch tagptr.Arch) (*Table, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	n := arch.TableEntries()
	t := &Table{
		arch:  arch,
		gmi:   1,
		slots: make([]atomic.Uint64, n*slotsPerEntry),
		sub:   make([]bool, n),
	}
	// Reserved entry 0: minimum base address, maximum upper bound (§II.E).
	t.slots[1].Store(reservedHigh)
	t.highWater = 1
	return t, nil
}

// Capacity returns the number of entries (including the reserved one).
func (t *Table) Capacity() uint64 { return t.arch.TableEntries() }

// Load returns the (low, high) bounds of entry idx, lock-free.
func (t *Table) Load(idx uint64) (low, high uint64) {
	base := idx * slotsPerEntry
	return t.slots[base].Load(), t.slots[base+1].Load()
}

// IsSub reports whether entry idx currently holds sub-object metadata. It is
// consulted only on the check's failure (reporting) path.
func (t *Table) IsSub(idx uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sub[idx]
}

// Allocate creates a metadata entry for an object spanning [low, high) and
// returns its index. Per Figure 2, the entry at the current GMI is used and
// GMI advances by the entry's stored nextID + 1: 0 for virgin entries
// (advance to the next virgin slot) and the encoded free-list offset for
// recycled ones (jump back to the previous head).
//
// When the table is exhausted (2^TagBits simultaneously live objects, the
// §V limitation), Allocate reports ok=false; the caller falls back to the
// reserved entry, trading protection of this one object for progress.
func (t *Table) Allocate(low, high uint64, sub bool) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := t.gmi
	limit := t.Capacity()
	if t.reserveLast {
		limit--
	}
	if t.clamp != 0 && t.clamp+1 < limit {
		// Injected capacity clamp: at most t.clamp allocatable entries
		// (indices 1..clamp), so exhaustion is reachable in tests without
		// 2^17 live objects.
		limit = t.clamp + 1
	}
	if k >= limit {
		t.exhausted++
		return 0, false
	}
	base := k * slotsPerEntry
	next := int64(t.slots[base+2].Load())
	t.slots[base].Store(low)
	t.slots[base+1].Store(high)
	t.slots[base+2].Store(0)
	t.sub[k] = sub
	t.gmi = uint64(int64(k) + next + 1)
	t.live++
	t.allocs++
	if k+1 > t.highWater {
		t.highWater = k + 1
	}
	return k, true
}

// Free invalidates entry k and threads it onto the encoded free list
// (§II.B.4, Figure 2): low := INVALID, high := 0, nextID := GMI - k - 1,
// GMI := k. The next Allocate reuses k immediately and restores GMI.
func (t *Table) Free(k uint64) {
	if k == 0 || k >= t.Capacity() {
		return // the reserved entry is never recycled
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := k * slotsPerEntry
	t.slots[base].Store(Invalid)
	t.slots[base+1].Store(0)
	t.slots[base+2].Store(uint64(int64(t.gmi) - int64(k) - 1))
	t.gmi = k
	t.live--
}

// Reset restores the table to its freshly-constructed state (the real
// runtime would munmap and lazily re-fault the region; here we zero it).
// Only entries below the high-water mark were ever written, so the cost is
// proportional to the table's peak occupancy, not its 2^TagBits capacity —
// for short programs this is a few cache lines instead of a 3 MiB
// allocation. The reserveLast flag is structural configuration, not run
// state, and survives the reset.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.slots[:t.highWater*slotsPerEntry] {
		t.slots[i].Store(0)
	}
	for i := range t.sub[:t.highWater] {
		t.sub[i] = false
	}
	t.slots[1].Store(reservedHigh)
	t.gmi = 1
	t.highWater = 1
	t.live = 0
	t.allocs = 0
	t.exhausted = 0
	t.clamp = 0
}

// Clamp caps the table at n allocatable entries (excluding the reserved
// entry 0); 0 removes the cap. It is run state, not configuration: Reset
// clears it, so a pooled table never carries a clamp into the next case.
func (t *Table) Clamp(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clamp = n
}

// ReserveLast excludes the table's final entry from allocation, reserving
// its index as the CHAINED tag of the §V overflow-chaining extension.
func (t *Table) ReserveLast() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reserveLast = true
}

// Stats returns a snapshot of the table counters.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TableStats{
		Live:      t.live,
		HighWater: t.highWater,
		Allocs:    t.allocs,
		Exhausted: t.exhausted,
		Capacity:  t.Capacity(),
	}
}

// TouchedBytes returns the table's resident footprint under the lazy-mmap
// model: only pages up to the high-water entry have ever been written.
func (t *Table) TouchedBytes() int64 {
	t.mu.Lock()
	hw := t.highWater
	t.mu.Unlock()
	const page = 4096
	b := int64(hw) * EntryBytes
	return (b + page - 1) / page * page
}
