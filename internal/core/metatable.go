// Package core implements the CECSan runtime: the paper's primary
// contribution. It combines the compact, reusable metadata table (§II.B,
// Figure 2), pointer tagging (via internal/tagptr), the optimized combined
// spatial+temporal dereference check (Algorithm 1), the deallocation check
// (Algorithm 2), sub-object bounds narrowing (§II.D), protection for stack
// and global objects (§II.C.3), and compatibility wrappers for external
// uninstrumented code (§II.E).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cecsan/internal/tagptr"
)

// Invalid is the "very high value" (§II.B.4) written into a freed entry's
// low bound. Any dereference through a dangling pointer then computes a
// negative low-bound difference, failing Algorithm 1's combined check. It is
// far above every mappable address.
const Invalid uint64 = 1 << 62

// reservedHigh is the upper bound of the reserved entry 0, "initialized as
// very high address" (§III), so that untagged/foreign pointers pass every
// check.
const reservedHigh uint64 = 1 << 62

// slotsPerEntry is the entry stride: (low bound, high bound, nextID), 24
// bytes per entry (§III).
const slotsPerEntry = 3

// EntryBytes is the metadata footprint of one table entry.
const EntryBytes = 8 * slotsPerEntry

// Table is the compact metadata table: a linear array of
// (low, high, nextID) entries indexed by a pointer's tag. Entry 0 is
// reserved for pointers of unknown provenance (§II.E). A free list is
// encoded inside the entries themselves via nextID offsets, with the global
// metadata index GMI as its head (§II.B.2, Figure 2), so freed entries are
// reused as early as possible.
//
// Two opt-in temporal-hardening modes close the tag-index reuse window that
// "as early as possible" opens (the uaf_quarantine_flush blind spot):
//
//   - Generation stamping (genBits > 0) carves the top genBits off the tag
//     field, so a tag is gen<<idxBits|idx and the table shrinks to 2^idxBits
//     entries. The entry's current generation lives in the spare high bits of
//     its high-bound slot (bounds are < 2^AddrBits, so bits [AddrBits,
//     AddrBits+genBits) are genuinely free — the same unused-bit exploitation
//     the tag itself relies on). Free bumps the generation, so a stale tag
//     fails Probe's generation comparison even after the index is rebuilt.
//     The counter wraps at 2^genBits, falling back to stamp-free behaviour
//     for that incarnation (counted in GenWraps).
//
//   - Delayed reuse (delay > 0) holds each freed index in a FIFO until delay
//     more are freed, only then threading it onto the GMI free structure.
//     Exhaustion drains the FIFO oldest-first instead of degrading the
//     allocation (counted in IndexSpills).
//
// With both off (NewTable) the byte-level behaviour is identical to the
// paper's free structure.
//
// Writes (allocate/free) are serialized by a mutex, the paper's thread-safe
// GMI arrangement (§III). Checks read entries lock-free via atomic loads,
// which on x86-64 compile to the same plain loads the real runtime issues.
type Table struct {
	arch tagptr.Arch

	// Temporal-hardening configuration: structural, survives Reset.
	genBits  uint   // generation bits carved from the top of the tag (0 = off)
	idxBits  uint   // index bits remaining below the generation field
	idxMask  uint64 // (1 << idxBits) - 1
	genMask  uint64 // (1 << genBits) - 1
	genShift uint   // entry-side generation position in the high slot (= AddrBits)
	delay    int    // delayed-reuse FIFO depth (0 = immediate reuse)

	mu          sync.Mutex
	gmi         uint64 // current metadata table index (free-structure head)
	reserveLast bool   // final index reserved as the CHAINED tag
	clamp       uint64 // fault-injected capacity clamp (0 = none); cleared by Reset

	slots []atomic.Uint64 // 3 * 2^idxBits: low, high, nextID(two's complement)
	sub   []bool          // entry holds sub-object metadata (report classification only)

	fifo []uint64 // freed indices awaiting re-threading, oldest first

	live        int64
	highWater   uint64 // largest index ever handed out + 1 (lazy-page RSS model)
	allocs      int64
	exhausted   int64 // allocations that fell back to the reserved entry
	genWraps    int64 // generation counters that wrapped to 0 (coverage lost)
	indexSpills int64 // delayed indices re-threaded early under exhaustion
}

// TableStats is a snapshot of table counters.
type TableStats struct {
	Live      int64
	HighWater uint64
	Allocs    int64
	Exhausted int64
	Capacity  uint64
	// Temporal-hardening degradation counters (0 with hardening off).
	GenWraps    int64
	IndexSpills int64
	Delayed     int64 // indices currently held back by the reuse FIFO
}

// NewTable builds the table for an architecture: 2^TagBits entries
// (2^17 on x86-64, the prototype configuration). The constructor initializes
// every field to zero, sets the reserved entry's high bound to a very high
// address, and starts GMI at 1 (§III).
func NewTable(arch tagptr.Arch) (*Table, error) {
	return NewHardenedTable(arch, 0, 0)
}

// NewHardenedTable builds a table with the temporal-hardening modes
// configured: genBits generation bits carved from the tag field and a
// delayed-reuse FIFO of depth delay. (0, 0) is exactly NewTable.
func NewHardenedTable(arch tagptr.Arch, genBits uint, delay int) (*Table, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if genBits > 8 || (genBits > 0 && genBits+2 > arch.TagBits) {
		return nil, fmt.Errorf("core: generation bits %d out of range for %d tag bits", genBits, arch.TagBits)
	}
	if delay < 0 {
		return nil, fmt.Errorf("core: negative index delay %d", delay)
	}
	idxBits := arch.TagBits - genBits
	n := uint64(1) << idxBits
	t := &Table{
		arch:     arch,
		genBits:  genBits,
		idxBits:  idxBits,
		idxMask:  n - 1,
		genMask:  (uint64(1) << genBits) - 1,
		genShift: arch.AddrBits,
		delay:    delay,
		gmi:      1,
		slots:    make([]atomic.Uint64, n*slotsPerEntry),
		sub:      make([]bool, n),
	}
	// Reserved entry 0: minimum base address, maximum upper bound (§II.E).
	// reservedHigh sits at bit 62, above any generation field (AddrBits +
	// genBits <= 56), so entry 0 decodes as generation 0 and keeps matching
	// every untagged pointer.
	t.slots[1].Store(reservedHigh)
	t.highWater = 1
	return t, nil
}

// Capacity returns the number of entries (including the reserved one). With
// generation stamping on, index bits surrendered to the generation field
// halve the capacity per bit.
func (t *Table) Capacity() uint64 { return uint64(1) << t.idxBits }

// GenerationBits returns the configured generation-field width (0 = off).
func (t *Table) GenerationBits() uint { return t.genBits }

// IndexDelay returns the delayed-reuse FIFO depth (0 = immediate reuse).
func (t *Table) IndexDelay() int { return t.delay }

// Probe returns the decoded (low, high) bounds of the entry a tag refers to
// plus the XOR of the tag's generation stamp with the entry's current
// generation, lock-free. genXor is 0 when the generations match or stamping
// is off; any non-zero value means the pointer predates the entry's current
// incarnation, so negating it sets the sign bit and folds into Algorithm 1's
// combined test as a third OR term.
func (t *Table) Probe(tag uint64) (low, high, genXor uint64) {
	base := (tag & t.idxMask) * slotsPerEntry
	low = t.slots[base].Load()
	high = t.slots[base+1].Load()
	if t.genBits == 0 {
		return low, high, 0
	}
	genXor = (high>>t.genShift ^ tag>>t.idxBits) & t.genMask
	high &^= t.genMask << t.genShift
	return low, high, genXor
}

// Load returns the decoded (low, high) bounds of the entry tag refers to,
// lock-free (Probe without the generation comparison).
func (t *Table) Load(tag uint64) (low, high uint64) {
	low, high, _ = t.Probe(tag)
	return low, high
}

// IsSub reports whether the entry tag refers to currently holds sub-object
// metadata. It is consulted only on the check's failure (reporting) path.
func (t *Table) IsSub(tag uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sub[tag&t.idxMask]
}

// Allocate creates a metadata entry for an object spanning [low, high) and
// returns its tag. Per Figure 2, the entry at the current GMI is used and
// GMI advances by the entry's stored nextID + 1: 0 for virgin entries
// (advance to the next virgin slot) and the encoded free-list offset for
// recycled ones (jump back to the previous head). With generation stamping
// on, the returned tag carries the entry's current generation in its top
// genBits; otherwise the tag is the plain index.
//
// When the table is exhausted (2^idxBits simultaneously live objects, the
// §V limitation), Allocate first drains the delayed-reuse FIFO — an early
// re-threading that shrinks the reuse window instead of dropping this
// object's protection, counted in IndexSpills — and only then reports
// ok=false; the caller falls back to the reserved entry, trading protection
// of this one object for progress.
func (t *Table) Allocate(low, high uint64, sub bool) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	limit := t.Capacity()
	if t.reserveLast {
		limit--
	}
	if t.clamp != 0 && t.clamp+1 < limit {
		// Injected capacity clamp: at most t.clamp allocatable entries
		// (indices 1..clamp), so exhaustion is reachable in tests without
		// 2^17 live objects.
		limit = t.clamp + 1
	}
	for t.gmi >= limit && len(t.fifo) > 0 {
		t.thread(t.fifo[0])
		t.fifo = t.fifo[1:]
		t.indexSpills++
	}
	k := t.gmi
	if k >= limit {
		t.exhausted++
		return 0, false
	}
	base := k * slotsPerEntry
	next := int64(t.slots[base+2].Load())
	var gen uint64
	if t.genBits != 0 {
		// A recycled entry's generation was left in the high slot by Free;
		// virgin entries start at generation 0.
		gen = t.slots[base+1].Load() >> t.genShift & t.genMask
		high |= gen << t.genShift
	}
	t.slots[base].Store(low)
	t.slots[base+1].Store(high)
	t.slots[base+2].Store(0)
	t.sub[k] = sub
	t.gmi = uint64(int64(k) + next + 1)
	t.live++
	t.allocs++
	if k+1 > t.highWater {
		t.highWater = k + 1
	}
	return gen<<t.idxBits | k, true
}

// thread links freed index k onto the encoded free structure (§II.B.4,
// Figure 2): nextID := GMI - k - 1, GMI := k. Callers hold t.mu.
func (t *Table) thread(k uint64) {
	t.slots[k*slotsPerEntry+2].Store(uint64(int64(t.gmi) - int64(k) - 1))
	t.gmi = k
}

// Free invalidates the entry the tag refers to: low := INVALID, high := 0
// (plus, with stamping on, the bumped generation in the high slot's spare
// bits, so every stale tag of the previous incarnation now fails Probe).
// With immediate reuse the index is threaded onto the free list at once and
// the next Allocate reuses it; with delayed reuse it enters the FIFO and is
// threaded only after `delay` more frees.
func (t *Table) Free(tag uint64) {
	k := tag & t.idxMask
	if k == 0 || k >= t.Capacity() {
		return // the reserved entry is never recycled
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := k * slotsPerEntry
	t.slots[base].Store(Invalid)
	if t.genBits == 0 {
		t.slots[base+1].Store(0)
	} else {
		gen := t.slots[base+1].Load()>>t.genShift&t.genMask + 1
		if gen > t.genMask {
			// Generation wrap: this incarnation is indistinguishable from the
			// entry's first, so stale tags stamped 0 would validate again —
			// the graceful fallback to stamp-free coverage, counted.
			gen = 0
			t.genWraps++
		}
		t.slots[base+1].Store(gen << t.genShift)
	}
	if t.delay > 0 {
		t.fifo = append(t.fifo, k)
		if len(t.fifo) > t.delay {
			t.thread(t.fifo[0])
			t.fifo = t.fifo[1:]
		}
	} else {
		t.thread(k)
	}
	t.live--
}

// Reset restores the table to its freshly-constructed state (the real
// runtime would munmap and lazily re-fault the region; here we zero it).
// Only entries below the high-water mark were ever written, so the cost is
// proportional to the table's peak occupancy, not its 2^TagBits capacity —
// for short programs this is a few cache lines instead of a 3 MiB
// allocation. The reserveLast flag is structural configuration, not run
// state, and survives the reset.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.slots[:t.highWater*slotsPerEntry] {
		t.slots[i].Store(0)
	}
	for i := range t.sub[:t.highWater] {
		t.sub[i] = false
	}
	t.slots[1].Store(reservedHigh)
	t.gmi = 1
	t.highWater = 1
	t.live = 0
	t.allocs = 0
	t.exhausted = 0
	t.clamp = 0
	t.fifo = nil
	t.genWraps = 0
	t.indexSpills = 0
}

// Clamp caps the table at n allocatable entries (excluding the reserved
// entry 0); 0 removes the cap. It is run state, not configuration: Reset
// clears it, so a pooled table never carries a clamp into the next case.
func (t *Table) Clamp(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clamp = n
}

// ReserveLast excludes the table's final entry from allocation, reserving
// its index as the CHAINED tag of the §V overflow-chaining extension.
func (t *Table) ReserveLast() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reserveLast = true
}

// Stats returns a snapshot of the table counters.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TableStats{
		Live:        t.live,
		HighWater:   t.highWater,
		Allocs:      t.allocs,
		Exhausted:   t.exhausted,
		Capacity:    t.Capacity(),
		GenWraps:    t.genWraps,
		IndexSpills: t.indexSpills,
		Delayed:     int64(len(t.fifo)),
	}
}

// TouchedBytes returns the table's resident footprint under the lazy-mmap
// model: only pages up to the high-water entry have ever been written.
func (t *Table) TouchedBytes() int64 {
	t.mu.Lock()
	hw := t.highWater
	t.mu.Unlock()
	const page = 4096
	b := int64(hw) * EntryBytes
	return (b + page - 1) / page * page
}
