package fuzz

import (
	"fmt"
	"sort"
	"strings"
)

// object is one buffer the generated program owns. Plain buffers live on
// the heap (malloc, always byte-typed), the stack (local T[n]) or in a
// global; struct objects are heap-only (new) and carry the sub-object GEP
// surface: struct S<B> { char buf[B]; long t0; long t1; }.
type object struct {
	name       string
	seg        string // "heap", "stack", "global"
	elem       string // "char", "int", "long", "wchar" (plain buffers)
	es         int64  // element size in bytes
	count      int64  // elements
	structBuf  int64  // >0: struct object; buf field element count
	freedByBug bool   // a temporal/double-free shape consumed the free
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

// bytes is the object's total size (for structs: the struct size).
func (o *object) bytes() int64 {
	if o.structBuf > 0 {
		return align8(o.structBuf) + 16
	}
	return o.count * o.es
}

func (o *object) isStruct() bool { return o.structBuf > 0 }

// wideOK reports whether wcs*/wmem* calls fit the buffer cleanly.
func (o *object) wideOK() bool { return !o.isStruct() && o.bytes()%4 == 0 }

// op is one generated statement group: source lines for main, an optional
// helper function, the recv payloads it consumes, and the objects it uses.
type op struct {
	lines     []string
	helper    string
	inputs    [][]byte
	uses      []int // indices into Case.objects
	essential bool  // the injected bug; never removed by the minimizer
}

// genState carries the per-case generator state.
type genState struct {
	r       *rng
	objects []object
	nameN   int
}

func (g *genState) fresh(prefix string) string {
	g.nameN++
	return fmt.Sprintf("%s%d", prefix, g.nameN-1)
}

func (g *genState) obj(i int) *object { return &g.objects[i] }

// Fixed program preamble: shared source/scratch globals. Only the ones an
// op actually references are rendered.
const (
	gSrcName  = "GSRC"  // global char GSRC[256];       zero-filled copy source
	gStrName  = "GSTR"  // global char GSTR[] = "fuzz!" short C string
	gLongName = "GLONG" // 64-char C string, overflows every generated buffer
	gWideName = "WSRC"  // global wchar WSRC[16];       wide copy source
	gCellName = "CELL"  // global ptr CELL;             pointer spill slot
)

var gLongValue = strings.Repeat("a", 64)

var fixedGlobals = []struct{ name, decl string }{
	{gSrcName, "global char GSRC[256];"},
	{gStrName, `global char GSTR[] = "fuzz!";`},
	{gLongName, `global char GLONG[] = "` + gLongValue + `";`},
	{gWideName, "global wchar WSRC[16];"},
	{gCellName, "global ptr CELL;"},
}

// genObjects builds 1-3 objects. Object 0 is always a plain buffer so at
// least one bug shape applies to every layout.
func genObjects(g *genState) {
	n := g.r.rangeIn(1, 3)
	for i := 0; i < n; i++ {
		o := object{name: g.fresh("o")}
		if i > 0 && g.r.chance(1, 4) {
			o.seg = "heap"
			o.structBuf = []int64{8, 12, 16, 20, 24, 32}[g.r.intn(6)]
			g.objects = append(g.objects, o)
			continue
		}
		switch g.r.intn(3) {
		case 0:
			o.seg = "heap"
		case 1:
			o.seg = "stack"
		default:
			o.seg = "global"
		}
		o.elem, o.es = "char", 1
		if o.seg != "heap" { // malloc buffers are byte-typed
			switch g.r.intn(4) {
			case 0:
				o.elem, o.es = "int", 4
			case 1:
				o.elem, o.es = "long", 8
			case 2:
				o.elem, o.es = "wchar", 4
			}
		}
		switch o.es {
		case 1:
			o.count = int64(g.r.rangeIn(16, 64))
		case 4:
			o.count = int64(g.r.rangeIn(4, 16))
		default:
			o.count = int64(g.r.rangeIn(2, 8))
		}
		g.objects = append(g.objects, o)
	}
}

// benign op builders. Each returns nil when it does not apply to the
// object, so the picker can draw uniformly from the applicable set.
type benignBuilder func(g *genState, oi int) *op

var benignBuilders = []benignBuilder{
	// In-bounds fill loop over every element.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		i := g.fresh("i")
		return &op{uses: []int{oi}, lines: []string{fmt.Sprintf(
			"for (%s = 0; %s < %d; %s += 1) { %s[%s] = %d; }",
			i, i, o.count, i, o.name, i, g.r.intn(100))}}
	},
	// Read-and-sum loop.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		i, v := g.fresh("i"), g.fresh("v")
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("var %s = 0;", v),
			fmt.Sprintf("for (%s = 0; %s < %d; %s += 1) { %s = %s + %s[%s]; }",
				i, i, o.count, i, v, v, o.name, i),
			fmt.Sprintf("print_int(%s);", v)}}
	},
	// Single store through a runtime index (exercises the checked path).
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		v := g.fresh("v")
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("var %s = %d;", v, g.r.intn(int(o.count))),
			fmt.Sprintf("%s[%s] = %d;", o.name, v, g.r.intn(100))}}
	},
	// Single in-bounds load.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		v := g.fresh("v")
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("var %s = %s[%d];", v, o.name, g.r.intn(int(o.count))),
			fmt.Sprintf("print_int(%s);", v)}}
	},
	// memset of a prefix.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		n := 1 + g.r.intn(int(o.bytes()))
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("memset(%s, %d, %d);", o.name, g.r.intn(50), n)}}
	},
	// memcpy from the zero-filled global source.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		n := 1 + g.r.intn(int(o.bytes()))
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("memcpy(%s, %s, %d);", o.name, gSrcName, n)}}
	},
	// strcpy of the short global string (len 5 + NUL).
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() || o.elem != "char" || o.bytes() < 8 {
			return nil
		}
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("strcpy(%s, %s);", o.name, gStrName)}}
	},
	// strncpy with n <= size-1 (SoftBound's wrapper over-checks n+1; the
	// clean generator never hands it an exact fill).
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() || o.elem != "char" {
			return nil
		}
		n := 1 + g.r.intn(int(o.bytes())-1)
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("strncpy(%s, %s, %d);", o.name, gSrcName, n)}}
	},
	// wmemset over a prefix of a wide-capable buffer.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if !o.wideOK() {
			return nil
		}
		n := 1 + g.r.intn(int(o.bytes()/4))
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("wmemset(%s, %d, %d);", o.name, g.r.intn(50), n)}}
	},
	// wmemcpy from the wide global source.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if !o.wideOK() {
			return nil
		}
		limit := o.bytes() / 4
		if limit > 16 {
			limit = 16
		}
		n := 1 + g.r.intn(int(limit))
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("wmemcpy(%s, %s, %d);", o.name, gWideName, n)}}
	},
	// Round-trip through uninstrumented external code, then a safe read.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		a, v := g.fresh("x"), g.fresh("v")
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("var %s = externret ext_identity(%s);", a, o.name),
			fmt.Sprintf("var %s = %s[%d];", v, a, g.r.intn(int(o.count))),
			fmt.Sprintf("print_int(%s);", v)}}
	},
	// Helper-call flow: the pointer crosses a function boundary.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		h := g.fresh("helper")
		idx := g.r.intn(int(o.bytes())) // helpers index byte-wise
		return &op{uses: []int{oi},
			helper: fmt.Sprintf("func %s(p) { p[%d] = %d; }", h, idx, g.r.intn(100)),
			lines:  []string{fmt.Sprintf("%s(%s);", h, o.name)}}
	},
	// recv-driven store behind a bounds guard, fed an in-range payload.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if o.isStruct() {
			return nil
		}
		rb, k := g.fresh("rb"), g.fresh("k")
		payload := byte(g.r.intn(int(o.count)))
		return &op{uses: []int{oi}, inputs: [][]byte{{payload}}, lines: []string{
			fmt.Sprintf("var %s = local char[8];", rb),
			fmt.Sprintf("recv(%s, 8);", rb),
			fmt.Sprintf("var %s = %s[0];", k, rb),
			fmt.Sprintf("if (%s < %d) { %s[%s] = 2; }", k, o.count, o.name, k)}}
	},
	// strlen of the NUL-terminated global string.
	func(g *genState, oi int) *op {
		v := g.fresh("v")
		return &op{lines: []string{
			fmt.Sprintf("var %s = strlen(%s);", v, gStrName),
			fmt.Sprintf("print_int(%s);", v)}}
	},
	// Struct scalar-field store.
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if !o.isStruct() {
			return nil
		}
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("%s->t%d = %d;", o.name, g.r.intn(2), g.r.intn(100))}}
	},
	// Struct buf-field store through a runtime index (sub-object GEP).
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if !o.isStruct() {
			return nil
		}
		v := g.fresh("v")
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("var %s = %d;", v, g.r.intn(int(o.structBuf))),
			fmt.Sprintf("%s->buf[%s] = %d;", o.name, v, g.r.intn(100))}}
	},
	// In-bounds memcpy into the struct's buf field (sub-object decay).
	func(g *genState, oi int) *op {
		o := g.obj(oi)
		if !o.isStruct() {
			return nil
		}
		n := 1 + g.r.intn(int(o.structBuf))
		return &op{uses: []int{oi}, lines: []string{
			fmt.Sprintf("memcpy(%s->buf, %s, %d);", o.name, gSrcName, n)}}
	},
}

// genBenign appends one benign op on a random object, trying builders until
// one applies (the catalogue guarantees progress: several builders accept
// every object kind).
func genBenign(g *genState) *op {
	for {
		oi := g.r.intn(len(g.objects))
		b := benignBuilders[g.r.intn(len(benignBuilders))]
		if o := b(g, oi); o != nil {
			return o
		}
	}
}

// Generate builds the case for one seed: a random program, injected with
// exactly one labelled bug three times out of four.
func Generate(seed uint64) *Case {
	g := &genState{r: newRNG(seed)}
	genObjects(g)

	var ops []*op
	for n := g.r.rangeIn(2, 5); n > 0; n-- {
		ops = append(ops, genBenign(g))
	}

	oracle := Oracle{}
	if g.r.chance(3, 4) {
		bugOp, o := injectBug(g)
		oracle = o
		if shapeFor(o.Shape).atEnd {
			ops = append(ops, bugOp)
		} else {
			at := g.r.intn(len(ops) + 1)
			ops = append(ops[:at], append([]*op{bugOp}, ops[at:]...)...)
		}
	}

	c := &Case{Seed: seed, Oracle: oracle, objects: g.objects}
	for _, o := range ops {
		c.ops = append(c.ops, *o)
	}
	c.render()
	return c
}

// render rebuilds Source and Inputs from objects+ops. Objects not used by
// any remaining op (and not freed as part of the bug) are dropped, so the
// minimizer can shrink through re-rendering alone.
func (c *Case) render() {
	used := map[int]bool{}
	for _, o := range c.ops {
		for _, u := range o.uses {
			used[u] = true
		}
	}

	var b strings.Builder
	shape := c.Oracle.Shape
	if shape == "" {
		shape = "clean"
	}
	fmt.Fprintf(&b, "// fuzz seed=%d shape=%s\n", c.Seed, shape)

	// Struct declarations (dedup by buf size).
	structSeen := map[int64]bool{}
	var structSizes []int64
	for i := range c.objects {
		o := &c.objects[i]
		if used[i] && o.isStruct() && !structSeen[o.structBuf] {
			structSeen[o.structBuf] = true
			structSizes = append(structSizes, o.structBuf)
		}
	}
	sort.Slice(structSizes, func(i, j int) bool { return structSizes[i] < structSizes[j] })
	for _, sz := range structSizes {
		fmt.Fprintf(&b, "struct S%d { char buf[%d]; long t0; long t1; }\n", sz, sz)
	}

	// Fixed globals actually referenced.
	var allText strings.Builder
	for _, o := range c.ops {
		for _, l := range o.lines {
			allText.WriteString(l)
		}
		allText.WriteString(o.helper)
	}
	text := allText.String()
	for _, fg := range fixedGlobals {
		if strings.Contains(text, fg.name) {
			b.WriteString(fg.decl)
			b.WriteByte('\n')
		}
	}

	// Global-segment objects.
	for i := range c.objects {
		o := &c.objects[i]
		if used[i] && o.seg == "global" {
			fmt.Fprintf(&b, "global %s %s[%d];\n", o.elem, o.name, o.count)
		}
	}

	// Helpers.
	for _, o := range c.ops {
		if o.helper != "" {
			b.WriteString(o.helper)
			b.WriteByte('\n')
		}
	}

	b.WriteString("func main() {\n")
	for i := range c.objects {
		o := &c.objects[i]
		if !used[i] || o.seg == "global" {
			continue
		}
		switch {
		case o.isStruct():
			fmt.Fprintf(&b, "    var %s = new(S%d);\n", o.name, o.structBuf)
		case o.seg == "heap":
			fmt.Fprintf(&b, "    var %s = malloc(%d);\n", o.name, o.bytes())
		default:
			fmt.Fprintf(&b, "    var %s = local %s[%d];\n", o.name, o.elem, o.count)
		}
	}
	c.Inputs = nil
	for _, o := range c.ops {
		for _, l := range o.lines {
			fmt.Fprintf(&b, "    %s\n", l)
		}
		c.Inputs = append(c.Inputs, o.inputs...)
	}
	for i := range c.objects {
		o := &c.objects[i]
		if used[i] && o.seg == "heap" && !o.freedByBug {
			fmt.Fprintf(&b, "    free(%s);\n", o.name)
		}
	}
	b.WriteString("    return 0;\n}\n")
	c.Source = b.String()
}
