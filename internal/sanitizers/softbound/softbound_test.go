package softbound

import (
	"testing"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
)

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	r := New()
	space, err := mem.NewSpace(47)
	if err != nil {
		t.Fatal(err)
	}
	env := rt.Env{Space: space, Heap: alloc.NewHeap(), Globals: alloc.NewGlobals()}
	if err := r.Attach(&env); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBoundsCheckThroughMeta(t *testing.T) {
	r := newRuntime(t)
	p, meta, err := r.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Valid() {
		t.Fatal("malloc returned no metadata")
	}
	if v := r.Check(p, meta, 56, 8, rt.Write); v != nil {
		t.Fatalf("in-bounds: %v", v)
	}
	if v := r.Check(p, meta, 64, 1, rt.Write); v == nil {
		t.Fatal("overflow not detected")
	}
	if v := r.Check(p, meta, -1, 1, rt.Read); v == nil {
		t.Fatal("underflow not detected")
	}
}

func TestMetalessPointersUnchecked(t *testing.T) {
	r := newRuntime(t)
	// SoftBound's compatibility rule: pointers without metadata (from
	// uninstrumented code) are never checked.
	if v := r.Check(alloc.HeapBase, rt.PtrMeta{}, 1<<20, 8, rt.Write); v != nil {
		t.Fatalf("metaless pointer checked: %v", v)
	}
}

func TestCETSLockAndKey(t *testing.T) {
	r := newRuntime(t)
	p, meta, _ := r.Malloc(32)
	if v := r.Free(p, meta); v != nil {
		t.Fatalf("legal free: %v", v)
	}
	// The key no longer matches the (zeroed, possibly recycled) lock.
	if v := r.Check(p, meta, 0, 8, rt.Read); v == nil {
		t.Fatal("use-after-free not detected via lock-and-key")
	}
	if v := r.Free(p, meta); v == nil {
		t.Fatal("double free not detected")
	}
}

func TestLockRecyclingKeepsGenerationsApart(t *testing.T) {
	r := newRuntime(t)
	p1, m1, _ := r.Malloc(32)
	r.Free(p1, m1)
	// The next allocation recycles the lock cell with a NEW key.
	_, m2, _ := r.Malloc(32)
	if m2.Lock != m1.Lock {
		t.Skip("lock cell not recycled; generation test not applicable")
	}
	if v := r.Check(p1, m1, 0, 8, rt.Read); v == nil {
		t.Fatal("stale key accepted after lock recycling")
	}
	if v := r.Check(p1, m2, 0, 8, rt.Read); v != nil {
		t.Fatalf("fresh generation rejected: %v", v)
	}
}

func TestInvalidFreeByBase(t *testing.T) {
	r := newRuntime(t)
	p, meta, _ := r.Malloc(64)
	if v := r.Free(p+8, meta); v == nil || v.Kind != rt.KindInvalidFree {
		t.Fatalf("interior free: %v, want invalid-free", v)
	}
}

func TestShadowPropagationLosesTemporalKey(t *testing.T) {
	r := newRuntime(t)
	_, meta, _ := r.Malloc(32)
	r.StorePtrMeta(0x5000, meta)
	got := r.LoadPtrMeta(0x5000)
	if !got.Valid() {
		t.Fatal("shadow lost the bounds")
	}
	if got.Base != meta.Base || got.Bound != meta.Bound {
		t.Fatal("shadow corrupted the bounds")
	}
	// The modelled prototype defect: the CETS pair does not survive memory.
	if got.Lock != nil || got.Key != 0 {
		t.Fatal("shadow kept the lock-and-key pair; the modelled defect is gone")
	}
	// Storing invalid metadata clears the slot.
	r.StorePtrMeta(0x5000, rt.PtrMeta{})
	if r.LoadPtrMeta(0x5000).Valid() {
		t.Fatal("shadow slot not cleared")
	}
}

func TestWrapperGaps(t *testing.T) {
	r := newRuntime(t)
	p, meta, _ := r.Malloc(16)
	// Missing wrappers: wide family and memset pass unchecked.
	for _, fn := range []string{"wcsncpy", "wmemset", "memset", "print_str"} {
		if v := r.LibcCheck(fn, p, meta, 1<<12, rt.Write); v != nil {
			t.Errorf("%s checked: %v (released prototype lacks this wrapper)", fn, v)
		}
	}
	// Present wrappers catch overflows.
	if v := r.LibcCheck("memcpy", p, meta, 32, rt.Write); v == nil {
		t.Error("memcpy wrapper missing")
	}
	// The off-by-one strncpy wrapper: an exact-fit write is (wrongly)
	// reported — the modelled false-positive source.
	if v := r.LibcCheck("strncpy", p, meta, 16, rt.Write); v == nil {
		t.Error("strncpy off-by-one false positive not reproduced")
	}
}

func TestOverheadCountsShadowAndLocks(t *testing.T) {
	r := newRuntime(t)
	_, meta, _ := r.Malloc(16)
	r.StorePtrMeta(0x7000, meta)
	if got := r.OverheadBytes(); got < 32+8 {
		t.Fatalf("OverheadBytes = %d, want >= 40", got)
	}
}
