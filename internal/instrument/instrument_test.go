package instrument

import (
	"testing"

	"cecsan/internal/core"
	"cecsan/internal/interp"
	"cecsan/internal/rt"
	"cecsan/prog"
)

// cecsanOpts returns CECSan options with everything enabled.
func cecsanOpts() core.Options { return core.DefaultOptions() }

// runCECSan instruments and runs a program under CECSan with the given
// options.
func runCECSan(t *testing.T, p *prog.Program, opts core.Options) *interp.Result {
	t.Helper()
	san, err := core.Sanitizer(opts)
	if err != nil {
		t.Fatalf("Sanitizer: %v", err)
	}
	ip := Apply(p, san.Profile)
	m, err := interp.New(ip, san, interp.DefaultOptions())
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	return m.Run()
}

func countOps(f *prog.Func, op prog.Op) int {
	n := 0
	for i := range f.Code {
		if f.Code[i].Op == op {
			n++
		}
	}
	return n
}

func TestApplyDoesNotModifyOriginal(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocBytes(8)
	f.Store(b, 0, f.Const(1), prog.Int64T())
	f.RetVoid()
	p := pb.MustBuild()
	before := len(p.Funcs["main"].Code)
	san, _ := core.Sanitizer(cecsanOpts())
	_ = Apply(p, san.Profile)
	if got := len(p.Funcs["main"].Code); got != before {
		t.Fatalf("Apply mutated the input program: %d -> %d instructions", before, got)
	}
}

func TestChecksInsertedForHeapAccesses(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocReg(f.Const(64)) // dynamic size: no static info
	idx := f.Libc("rand")
	p := f.OffsetPtrReg(b, idx)
	f.Store(p, 0, f.Const(1), prog.Char())
	v := f.Load(p, 0, prog.Char())
	f.Ret(v)
	built := pb.MustBuild()
	opts := cecsanOpts()
	opts.OptRedundant = false // observe raw insertion
	san, _ := core.Sanitizer(opts)
	ip := Apply(built, san.Profile)
	if got := countOps(ip.Funcs["main"], prog.OpCheckAccess); got != 2 {
		t.Fatalf("inserted %d checks, want 2 (one store, one load)\n%s", got, ip.Funcs["main"].Dump())
	}
}

// TestTypeBasedRemoval verifies §II.F.2: accesses statically provable
// in-bounds (constant field offsets, constant in-bounds array indices)
// carry no runtime check, while out-of-range or dynamic ones do.
func TestTypeBasedRemoval(t *testing.T) {
	arr := prog.ArrayOf(prog.Int(), 16)
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	buf := f.Alloca(arr)
	// buf[15]: statically safe -> no check.
	safe := f.IndexPtr(buf, arr, f.Const(15))
	f.Store(safe, 0, f.Const(1), prog.Int())
	// buf[i] with dynamic i -> check.
	i := f.Libc("rand")
	dyn := f.IndexPtr(buf, arr, i)
	f.Store(dyn, 0, f.Const(2), prog.Int())
	f.RetVoid()
	built := pb.MustBuild()

	san, _ := core.Sanitizer(cecsanOpts())
	ip := Apply(built, san.Profile)
	if got := countOps(ip.Funcs["main"], prog.OpCheckAccess); got != 1 {
		t.Fatalf("checks = %d, want 1 (only the dynamic index)\n%s", got, ip.Funcs["main"].Dump())
	}

	// With the optimization off, both accesses are checked.
	opts := cecsanOpts()
	opts.OptTypeBased = false
	san2, _ := core.Sanitizer(opts)
	ip2 := Apply(built, san2.Profile)
	if got := countOps(ip2.Funcs["main"], prog.OpCheckAccess); got != 2 {
		t.Fatalf("ablation checks = %d, want 2", got)
	}
}

func TestStackClassification(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	// Safe scalar: accessed directly, in-bounds; must stay untracked.
	scalar := f.Alloca(prog.Int64T())
	f.Store(scalar, 0, f.Const(42), prog.Int64T())
	// Unsafe buffer: passed to a libc function; must be tracked.
	buf := f.Alloca(prog.ArrayOf(prog.Char(), 16))
	f.Libc("memset", buf, f.Const(0), f.Const(16))
	f.RetVoid()
	built := pb.MustBuild()
	san, _ := core.Sanitizer(cecsanOpts())
	ip := Apply(built, san.Profile)

	fn := ip.Funcs["main"]
	var trackedStates []bool
	for _, ai := range fn.Allocas {
		trackedStates = append(trackedStates, fn.Code[ai].Has(prog.FlagTracked))
	}
	if len(trackedStates) != 2 {
		t.Fatalf("allocas = %d, want 2", len(trackedStates))
	}
	if trackedStates[0] {
		t.Error("safe scalar alloca was tracked (§II.C.3 says direct accesses need no metadata)")
	}
	if !trackedStates[1] {
		t.Error("buffer passed to libc not tracked")
	}
}

func TestGlobalClassification(t *testing.T) {
	pb := prog.NewProgram()
	pb.Global("safe_flag", prog.Int())
	pb.Global("unsafe_buf", prog.ArrayOf(prog.Char(), 32))
	f := pb.Function("main", 0)
	g := f.GlobalAddr("safe_flag")
	f.Store(g, 0, f.Const(1), prog.Int())
	ub := f.GlobalAddr("unsafe_buf")
	f.Libc("memset", ub, f.Const(0), f.Const(32))
	f.RetVoid()
	built := pb.MustBuild()
	san, _ := core.Sanitizer(cecsanOpts())
	ip := Apply(built, san.Profile)

	byName := map[string]prog.GlobalSpec{}
	for _, gs := range ip.Globals {
		byName[gs.Name] = gs
	}
	if byName["safe_flag"].AddressTaken {
		t.Error("statically safe global marked unsafe")
	}
	if !byName["unsafe_buf"].AddressTaken {
		t.Error("global passed to libc not marked unsafe")
	}
}

// TestSubObjectNarrowingEndToEnd reproduces Figure 3 end to end: the
// memcpy whose size is sizeof(struct) instead of sizeof(field) must be
// reported by CECSan as a sub-object overflow.
func TestSubObjectNarrowingEndToEnd(t *testing.T) {
	st := prog.StructOf("CharVoid",
		prog.FieldSpec{Name: "charFirst", Type: prog.ArrayOf(prog.Char(), 16)},
		prog.FieldSpec{Name: "voidSecond", Type: prog.VoidPtr()},
	)
	build := func(copyLen int64) *prog.Program {
		pb := prog.NewProgram()
		pb.GlobalBytes("src", make([]byte, 32))
		f := pb.Function("main", 0)
		obj := f.MallocType(st)
		fp := f.FieldPtr(obj, st, "charFirst")
		f.Libc("memcpy", fp, f.GlobalAddr("src"), f.Const(copyLen))
		f.Free(obj)
		f.RetVoid()
		return pb.MustBuild()
	}

	// Bad version: memcpy(ptr, src, sizeof(struct)) = 24 > 16.
	res := runCECSan(t, build(24), cecsanOpts())
	if res.Violation == nil {
		t.Fatalf("sub-object overflow not detected: %+v", res)
	}
	if res.Violation.Kind != rt.KindSubObjectOverflow {
		t.Errorf("kind = %v, want sub-object-overflow", res.Violation.Kind)
	}
	// Good version: memcpy of exactly the field size.
	if res := runCECSan(t, build(16), cecsanOpts()); !res.Ok() {
		t.Fatalf("false positive on good version: %+v", res)
	}
	// Without sub-object narrowing (PACMem/CryptSan model) the bad copy
	// stays inside the object and is missed.
	opts := cecsanOpts()
	opts.SubObject = false
	opts.Name = "PACMem-model"
	if res := runCECSan(t, build(24), opts); res.Violation != nil {
		t.Fatalf("object-granular model unexpectedly detected sub-object overflow: %v", res.Violation)
	}
}

// TestSubPtrLoopChurnDoesNotExhaustTable: sub-object pointers created in a
// loop must recycle their metadata entries (pre-release + free list), not
// leak 2^17 entries.
func TestSubPtrLoopChurnDoesNotExhaustTable(t *testing.T) {
	st := prog.StructOf("Pair",
		prog.FieldSpec{Name: "data", Type: prog.ArrayOf(prog.Char(), 8)},
		prog.FieldSpec{Name: "n", Type: prog.Int64T()},
	)
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	obj := f.MallocType(st)
	iv := f.Libc("rand") // defeat static safety so narrowing happens
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(200_000), 1, func(i prog.Reg) {
		fp := f.FieldPtr(obj, st, "data")
		q := f.OffsetPtrReg(fp, f.Bin(prog.BinAnd, iv, f.Const(7)))
		f.Store(q, 0, i, prog.Char())
	})
	f.Free(obj)
	f.RetVoid()
	built := pb.MustBuild()

	san, err := core.Sanitizer(cecsanOpts())
	if err != nil {
		t.Fatal(err)
	}
	ip := Apply(built, san.Profile)
	m, err := interp.New(ip, san, interp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if !res.Ok() {
		t.Fatalf("churn run failed: %+v", res)
	}
	cr, ok := san.Runtime.(*core.Runtime)
	if !ok {
		t.Fatal("runtime is not core.Runtime")
	}
	stats := cr.Table().Stats()
	if stats.Exhausted != 0 {
		t.Fatalf("table exhausted %d times during sub-object churn", stats.Exhausted)
	}
	if stats.HighWater > 64 {
		t.Fatalf("high water = %d, want small (entries must recycle)", stats.HighWater)
	}
}

func TestRedundantCheckElimination(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocReg(f.Const(64))
	idx := f.Libc("rand")
	p := f.OffsetPtrReg(b, f.Bin(prog.BinAnd, idx, f.Const(31)))
	// Same location written twice then read: 3 accesses, 1 surviving check
	// (the first write subsumes the second write and the read).
	f.Store(p, 0, f.Const(1), prog.Int64T())
	f.Store(p, 0, f.Const(2), prog.Int64T())
	v := f.Load(p, 0, prog.Int64T())
	f.Ret(v)
	built := pb.MustBuild()

	san, _ := core.Sanitizer(cecsanOpts())
	ip := Apply(built, san.Profile)
	if got := countOps(ip.Funcs["main"], prog.OpCheckAccess); got != 1 {
		t.Fatalf("checks after redundancy elimination = %d, want 1\n%s", got, ip.Funcs["main"].Dump())
	}

	opts := cecsanOpts()
	opts.OptRedundant = false
	san2, _ := core.Sanitizer(opts)
	ip2 := Apply(built, san2.Profile)
	if got := countOps(ip2.Funcs["main"], prog.OpCheckAccess); got != 3 {
		t.Fatalf("ablation checks = %d, want 3", got)
	}
}

func TestReadCheckDoesNotSubsumeWrite(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocReg(f.Const(64))
	idx := f.Libc("rand")
	p := f.OffsetPtrReg(b, f.Bin(prog.BinAnd, idx, f.Const(31)))
	v := f.Load(p, 0, prog.Int64T())
	f.Store(p, 0, v, prog.Int64T())
	f.RetVoid()
	built := pb.MustBuild()
	san, _ := core.Sanitizer(cecsanOpts())
	ip := Apply(built, san.Profile)
	// Read then write: the read check must NOT absorb the write check.
	if got := countOps(ip.Funcs["main"], prog.OpCheckAccess); got != 2 {
		t.Fatalf("checks = %d, want 2 (read does not subsume write)\n%s", got, ip.Funcs["main"].Dump())
	}
}

// TestLoopInvariantHoisting verifies §II.F.1: a check on a loop-invariant
// pointer executes once (after the loop), not once per iteration — for
// stores too, which redzone-based tools cannot relocate.
func TestLoopInvariantHoisting(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocReg(f.Const(64))
	idx := f.Libc("rand")
	p := f.OffsetPtrReg(b, f.Bin(prog.BinAnd, idx, f.Const(31)))
	acc := f.NewReg()
	f.AssignConst(acc, 0)
	f.ForRange(prog.ConstOperand(0), prog.ConstOperand(1000), 1, func(i prog.Reg) {
		f.Store(p, 0, i, prog.Int64T()) // invariant pointer, write
	})
	f.Ret(acc)
	built := pb.MustBuild()

	run := func(opts core.Options) int64 {
		res := runCECSan(t, built, opts)
		if !res.Ok() {
			t.Fatalf("run failed: %+v", res)
		}
		return res.Stats.ChecksExecuted
	}
	withOpt := run(cecsanOpts())
	noOpts := cecsanOpts()
	noOpts.OptLoopInvariant = false
	noOpts.OptMonotonic = false
	withoutOpt := run(noOpts)

	if withoutOpt < 1000 {
		t.Fatalf("unoptimized checks = %d, want >= 1000", withoutOpt)
	}
	if withOpt > 10 {
		t.Fatalf("optimized checks = %d, want <= 10 (single relocated check)", withOpt)
	}
}

// TestMonotonicGrouping verifies Figure 4a: a linear array sweep executes
// roughly 1/check_step of the checks while still catching overflows.
func TestMonotonicGrouping(t *testing.T) {
	build := func(n int64) *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		arrTy := prog.ArrayOf(prog.Int64T(), 1000)
		b := f.MallocType(arrTy)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(n), 1, func(i prog.Reg) {
			p := f.ElemPtr(b, prog.Int64T(), i)
			f.Store(p, 0, i, prog.Int64T())
		})
		f.Free(b)
		f.RetVoid()
		return pb.MustBuild()
	}

	// Good sweep: exactly fills the array.
	res := runCECSan(t, build(1000), cecsanOpts())
	if !res.Ok() {
		t.Fatalf("false positive on exact sweep: %+v", res)
	}
	if res.Stats.ChecksExecuted > 250 {
		t.Fatalf("grouped checks = %d, want ~200 (1000/5)", res.Stats.ChecksExecuted)
	}
	// Ablation: per-element checking.
	noOpt := cecsanOpts()
	noOpt.OptMonotonic = false
	noOpt.OptLoopInvariant = false
	res2 := runCECSan(t, build(1000), noOpt)
	if res2.Stats.ChecksExecuted < 1000 {
		t.Fatalf("ungrouped checks = %d, want >= 1000", res2.Stats.ChecksExecuted)
	}

	// Bad sweep: overflows by one element; grouping must not lose it.
	res3 := runCECSan(t, build(1001), cecsanOpts())
	if res3.Violation == nil {
		t.Fatal("grouped checks missed the overflow")
	}
	// Non-multiple-of-5 limits must not false-positive (widened checks are
	// clamped at the loop limit).
	for _, n := range []int64{997, 998, 999, 1} {
		if res := runCECSan(t, build(n), cecsanOpts()); !res.Ok() {
			t.Fatalf("false positive at n=%d: %+v", n, res)
		}
	}
}

// TestOptimizationsPreserveDetection runs a matrix of bad programs under
// every combination of optimization toggles: optimizations must never cost
// a detection.
func TestOptimizationsPreserveDetection(t *testing.T) {
	overflowProg := func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		arrTy := prog.ArrayOf(prog.Int64T(), 64)
		b := f.MallocType(arrTy)
		f.ForRange(prog.ConstOperand(0), prog.ConstOperand(65), 1, func(i prog.Reg) {
			f.Store(f.ElemPtr(b, prog.Int64T(), i), 0, i, prog.Int64T())
		})
		f.RetVoid()
		return pb.MustBuild()
	}
	uafProg := func() *prog.Program {
		pb := prog.NewProgram()
		f := pb.Function("main", 0)
		b := f.MallocBytes(64)
		f.Free(b)
		f.Store(b, 0, f.Const(1), prog.Int64T())
		f.RetVoid()
		return pb.MustBuild()
	}
	progs := map[string]*prog.Program{"loop overflow": overflowProg(), "uaf": uafProg()}

	for mask := 0; mask < 16; mask++ {
		opts := cecsanOpts()
		opts.OptRedundant = mask&1 != 0
		opts.OptLoopInvariant = mask&2 != 0
		opts.OptMonotonic = mask&4 != 0
		opts.OptTypeBased = mask&8 != 0
		for name, p := range progs {
			if res := runCECSan(t, p, opts); res.Violation == nil {
				t.Errorf("mask %04b: %s not detected (res=%+v)", mask, name, res)
			}
		}
	}
}

// TestPtrMetaInstrumentation checks the SoftBound-style propagation ops are
// inserted for pointer-valued loads and stores only.
func TestPtrMetaInstrumentation(t *testing.T) {
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	pp := f.MallocType(prog.PtrTo(prog.Int()))
	q := f.MallocBytes(4)
	f.Store(pp, 0, q, prog.PtrTo(prog.Int()))  // pointer store
	v := f.Load(pp, 0, prog.PtrTo(prog.Int())) // pointer load
	f.Store(v, 0, f.Const(7), prog.Int())      // integer store
	f.RetVoid()
	built := pb.MustBuild()

	profile := rt.Profile{Name: "sb", CheckLoads: true, CheckStores: true, PtrMeta: true}
	ip := Apply(built, profile)
	if got := countOps(ip.Funcs["main"], prog.OpPtrMetaStore); got != 1 {
		t.Errorf("PtrMetaStore = %d, want 1", got)
	}
	if got := countOps(ip.Funcs["main"], prog.OpPtrMetaLoad); got != 1 {
		t.Errorf("PtrMetaLoad = %d, want 1", got)
	}
}

// TestEscapingFieldPointerNotNarrowed: returning &obj->field must not be
// narrowed, or the scope-exit release would turn the caller's legal use
// into a false use-after-scope.
func TestEscapingFieldPointerNotNarrowed(t *testing.T) {
	st := prog.StructOf("S",
		prog.FieldSpec{Name: "buf", Type: prog.ArrayOf(prog.Char(), 8)},
		prog.FieldSpec{Name: "n", Type: prog.Int64T()},
	)
	pb := prog.NewProgram()
	get := pb.Function("get_buf", 1)
	get.Ret(get.FieldPtr(get.Arg(0), st, "buf"))
	f := pb.Function("main", 0)
	obj := f.MallocType(st)
	fp := f.Call("get_buf", obj)
	f.Libc("memset", fp, f.Const(0), f.Const(8))
	f.Free(obj)
	f.RetVoid()
	built := pb.MustBuild()

	if res := runCECSan(t, built, cecsanOpts()); !res.Ok() {
		t.Fatalf("false positive on escaping field pointer: %+v", res)
	}
}

func TestGPTGlobalProtectionEndToEnd(t *testing.T) {
	arr := prog.ArrayOf(prog.Char(), 16)
	build := func(n int64) *prog.Program {
		pb := prog.NewProgram()
		pb.Global("g_buf", arr)
		f := pb.Function("main", 0)
		g := f.GlobalAddr("g_buf")
		f.Libc("memset", g, f.Const(0x41), f.Const(n))
		f.RetVoid()
		return pb.MustBuild()
	}
	if res := runCECSan(t, build(16), cecsanOpts()); !res.Ok() {
		t.Fatalf("false positive on in-bounds global write: %+v", res)
	}
	res := runCECSan(t, build(17), cecsanOpts())
	if res.Violation == nil {
		t.Fatal("global buffer overflow not detected through the GPT")
	}
	if res.Violation.Seg.String() != "global" {
		t.Errorf("violation segment = %v, want global", res.Violation.Seg)
	}
}

func TestStackUseAfterScopeViaHelper(t *testing.T) {
	// helper() returns the address of its local buffer; main dereferences
	// the dangling pointer -> use-after-scope caught by epilogue release.
	pb := prog.NewProgram()
	h := pb.Function("helper", 0)
	local := h.Alloca(prog.ArrayOf(prog.Char(), 16))
	h.Libc("memset", local, h.Const(0), h.Const(16)) // make it unsafe/tracked
	h.Ret(local)
	f := pb.Function("main", 0)
	dangling := f.Call("helper")
	f.Store(dangling, 0, f.Const(1), prog.Char())
	f.RetVoid()
	built := pb.MustBuild()

	res := runCECSan(t, built, cecsanOpts())
	if res.Violation == nil {
		t.Fatalf("use-after-scope not detected: %+v", res)
	}
	if res.Violation.Kind != rt.KindUseAfterFree {
		t.Errorf("kind = %v, want use-after-free (scope)", res.Violation.Kind)
	}
}

func TestExternalCallCompatEndToEnd(t *testing.T) {
	// Tagged pointer passed to external code, returned (retIsArg0),
	// re-tagged, then used and overflowed: the overflow must still be
	// caught after the round trip, proving tags survive the §II.E wrapper.
	pb := prog.NewProgram()
	f := pb.Function("main", 0)
	b := f.MallocBytes(32)
	same := f.CallExternal("ext_identity", true, b)
	f.Store(same, 0, f.Const(1), prog.Char()) // legal
	f.Store(same, 32, f.Const(1), prog.Char()) // overflow
	f.RetVoid()
	built := pb.MustBuild()
	res := runCECSan(t, built, cecsanOpts())
	if res.Violation == nil || res.Fault != nil {
		t.Fatalf("overflow after external round trip not detected: %+v", res)
	}
}
