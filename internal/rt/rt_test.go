package rt

import (
	"strings"
	"testing"

	"cecsan/internal/alloc"
)

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("AccessKind strings: %q/%q", Read, Write)
	}
}

func TestViolationKindStrings(t *testing.T) {
	tests := map[Kind]string{
		KindOOBRead:           "buffer-overflow-read",
		KindOOBWrite:          "buffer-overflow-write",
		KindUseAfterFree:      "use-after-free",
		KindDoubleFree:        "double-free",
		KindInvalidFree:       "invalid-free",
		KindSubObjectOverflow: "sub-object-overflow",
		KindUnknown:           "unknown-violation",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{
		Kind: KindOOBWrite, Ptr: 0x1000, Addr: 0x1040, Size: 8,
		Seg: alloc.SegHeap, Detail: "past the end", Func: "main", PC: 7,
	}
	msg := v.Error()
	for _, want := range []string{"buffer-overflow-write", "0x1040", "heap", "main@7", "past the end"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestPtrMetaValid(t *testing.T) {
	if (PtrMeta{}).Valid() {
		t.Error("zero PtrMeta reported valid")
	}
	if !(PtrMeta{Base: 0x1000, Bound: 0x1040}).Valid() {
		t.Error("bounded PtrMeta reported invalid")
	}
}
