package asan

import (
	"testing"

	"cecsan/internal/alloc"
	"cecsan/internal/mem"
	"cecsan/internal/rt"
)

func newRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	r := New(opts)
	space, err := mem.NewSpace(47)
	if err != nil {
		t.Fatal(err)
	}
	env := rt.Env{Space: space, Heap: alloc.NewHeap(), Globals: alloc.NewGlobals()}
	if err := r.Attach(&env); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRedzoneScaling(t *testing.T) {
	r := New(DefaultOptions())
	tests := []struct {
		size   int64
		wantRZ int64
	}{
		{16, 16},
		{128, 16},
		{1 << 10, 128},
		{1 << 20, 2048}, // capped at RedzoneMax
	}
	for _, tt := range tests {
		if got := r.redzoneFor(tt.size); got != tt.wantRZ {
			t.Errorf("redzoneFor(%d) = %d, want %d", tt.size, got, tt.wantRZ)
		}
	}
}

func TestShadowPartialGranule(t *testing.T) {
	r := newRuntime(t, DefaultOptions())
	p, _, err := r.Malloc(13) // last granule partially addressable
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Check(p, rt.PtrMeta{}, 12, 1, rt.Write); v != nil {
		t.Fatalf("last valid byte reported: %v", v)
	}
	// Byte 13 is inside the object's final granule but past the partial
	// marker: the partial-granule encoding catches it.
	if v := r.Check(p, rt.PtrMeta{}, 13, 1, rt.Write); v == nil {
		t.Fatal("intra-granule off-by-one not detected (partial shadow broken)")
	}
}

func TestRedzonesCatchContiguousOverflow(t *testing.T) {
	r := newRuntime(t, DefaultOptions())
	p, _, _ := r.Malloc(64)
	if v := r.Check(p, rt.PtrMeta{}, 64, 8, rt.Write); v == nil {
		t.Fatal("right redzone not poisoned")
	}
	if v := r.Check(p, rt.PtrMeta{}, -8, 8, rt.Write); v == nil {
		t.Fatal("left redzone not poisoned")
	}
}

func TestStrideSkipsRedzone(t *testing.T) {
	r := newRuntime(t, DefaultOptions())
	p, _, _ := r.Malloc(64)
	// Far beyond both redzones: virgin shadow is addressable -> miss.
	if v := r.Check(p, rt.PtrMeta{}, 1<<16, 8, rt.Write); v != nil {
		t.Fatalf("far stride unexpectedly detected: %v (location-based gap)", v)
	}
}

func TestQuarantineDelaysReuseThenReleases(t *testing.T) {
	opts := DefaultOptions()
	opts.QuarantineBytes = 1 << 12 // tiny, to force eviction
	r := newRuntime(t, opts)

	p, _, _ := r.Malloc(64)
	if v := r.Free(p, rt.PtrMeta{}); v != nil {
		t.Fatalf("free: %v", v)
	}
	// While quarantined: UAF caught, double free caught.
	if v := r.Check(p, rt.PtrMeta{}, 0, 8, rt.Read); v == nil {
		t.Fatal("UAF on quarantined chunk not detected")
	}
	if v := r.Free(p, rt.PtrMeta{}); v == nil || v.Kind != rt.KindDoubleFree {
		t.Fatalf("double free on quarantined chunk: %v", v)
	}
	// Churn enough same-class chunks to evict and recycle p's memory.
	var last uint64
	for i := 0; i < 200; i++ {
		q, _, _ := r.Malloc(64)
		r.Free(q, rt.PtrMeta{})
		last = q
	}
	_ = last
	fresh, _, _ := r.Malloc(64)
	if fresh != p {
		t.Skipf("allocator did not recycle p (%#x vs %#x)", fresh, p)
	}
	// The recycled memory is addressable again: the old UAF is now missed.
	if v := r.Check(p, rt.PtrMeta{}, 0, 8, rt.Read); v != nil {
		t.Fatalf("post-recycling access reported: %v (quarantine gap expected)", v)
	}
}

func TestInvalidFreeClassification(t *testing.T) {
	r := newRuntime(t, DefaultOptions())
	p, _, _ := r.Malloc(64)
	if v := r.Free(p+8, rt.PtrMeta{}); v == nil || v.Kind != rt.KindInvalidFree {
		t.Fatalf("interior free: %v, want invalid-free", v)
	}
	if v := r.Free(alloc.StackBase+64, rt.PtrMeta{}); v == nil || v.Kind != rt.KindInvalidFree {
		t.Fatalf("stack free: %v, want invalid-free", v)
	}
}

func TestGlobalRedzone(t *testing.T) {
	r := newRuntime(t, DefaultOptions())
	const raw = alloc.GlobalsBase + 0x100
	p, _ := r.GlobalInit("g", raw, 24, true)
	if v := r.Check(p, rt.PtrMeta{}, 23, 1, rt.Write); v != nil {
		t.Fatalf("in-bounds global write reported: %v", v)
	}
	if v := r.Check(p, rt.PtrMeta{}, 24, 1, rt.Write); v == nil {
		t.Fatal("global right redzone not poisoned")
	}
}

func TestWideAndPrintInterceptorGaps(t *testing.T) {
	r := newRuntime(t, DefaultOptions())
	p, _, _ := r.Malloc(16)
	for _, fn := range []string{"wcsncpy", "wmemset", "print_str"} {
		if v := r.LibcCheck(fn, p, rt.PtrMeta{}, 1<<10, rt.Write); v != nil {
			t.Errorf("%s intercepted: %v (gap expected)", fn, v)
		}
	}
	if v := r.LibcCheck("memcpy", p, rt.PtrMeta{}, 32, rt.Write); v == nil {
		t.Error("memcpy interceptor missing")
	}
	// With InterceptWide enabled, the wide family IS checked.
	opts := DefaultOptions()
	opts.InterceptWide = true
	r2 := newRuntime(t, opts)
	q, _, _ := r2.Malloc(16)
	if v := r2.LibcCheck("wcsncpy", q, rt.PtrMeta{}, 64, rt.Write); v == nil {
		t.Error("InterceptWide did not enable the wide interceptor")
	}
}

func TestOverheadAccountsShadowRedzonesQuarantine(t *testing.T) {
	r := newRuntime(t, DefaultOptions())
	base := r.OverheadBytes()
	p, _, _ := r.Malloc(1 << 10)
	afterAlloc := r.OverheadBytes()
	if afterAlloc <= base {
		t.Fatal("redzones/shadow not accounted after malloc")
	}
	r.Free(p, rt.PtrMeta{})
	if r.OverheadBytes() <= afterAlloc {
		t.Fatal("quarantine not accounted after free")
	}
}
