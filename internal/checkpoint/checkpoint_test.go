package checkpoint

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type fakePayload struct {
	Count  int    `json:"count"`
	Digest string `json:"digest"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	want := fakePayload{Count: 1234, Digest: "abc"}
	if err := Save(path, KindServe, want); err != nil {
		t.Fatal(err)
	}
	var got fakePayload
	if err := Load(path, KindServe, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestLoadMissingFileIsNotExist(t *testing.T) {
	var got fakePayload
	err := Load(filepath.Join(t.TempDir(), "nope.ckpt"), KindServe, &got)
	if !os.IsNotExist(err) {
		t.Fatalf("missing file: got %v, want os.IsNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("a missing file must not classify as corrupt")
	}
}

func TestLoadRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	if err := Save(path, KindServe, fakePayload{Count: 7}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := []struct {
		name string
		data []byte
	}{
		{"truncated", good[:len(good)/2]},
		{"empty", nil},
		{"not json", []byte("definitely not a checkpoint\n")},
		{"wrong magic", []byte(strings.Replace(string(good), magic, "other-tool", 1))},
		{"bit flip in payload", func() []byte {
			b := append([]byte(nil), good...)
			i := strings.Index(string(b), `"count":7`)
			b[i+len(`"count":`)] = '8'
			return b
		}()},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			p := filepath.Join(dir, "bad.ckpt")
			if err := os.WriteFile(p, d.data, 0o644); err != nil {
				t.Fatal(err)
			}
			var got fakePayload
			err := Load(p, KindServe, &got)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: got %v, want ErrCorrupt", d.name, err)
			}
			if !strings.Contains(err.Error(), p) {
				t.Fatalf("%s: error %q must name the file", d.name, err)
			}
		})
	}
}

func TestLoadRejectsKindAndVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	if err := Save(path, KindFuzz, fakePayload{}); err != nil {
		t.Fatal(err)
	}
	var got fakePayload
	if err := Load(path, KindServe, &got); err == nil || !strings.Contains(err.Error(), `kind "fuzz"`) {
		t.Fatalf("kind mismatch: got %v", err)
	}

	// A future-version snapshot must be refused, not guessed at.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(string(data), fmt.Sprintf(`"version":%d`, Version), fmt.Sprintf(`"version":%d`, Version+1), 1)
	if bumped == string(data) {
		t.Fatal("test fixture: version field not found")
	}
	if err := os.WriteFile(path, []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, KindFuzz, &got); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch: got %v", err)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	for i := 0; i < 3; i++ {
		if err := Save(path, KindServe, fakePayload{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got fakePayload
	if err := Load(path, KindServe, &got); err != nil {
		t.Fatal(err)
	}
	if got.Count != 2 {
		t.Fatalf("latest snapshot: count = %d, want 2", got.Count)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %v, want only the checkpoint (no temp litter)", entries)
	}
}

func TestHashStateRoundTrip(t *testing.T) {
	a := sha256.New()
	a.Write([]byte("first half "))
	state, err := MarshalHash(a)
	if err != nil {
		t.Fatal(err)
	}

	b := sha256.New()
	if err := UnmarshalHash(b, state); err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("second half"))
	b.Write([]byte("second half"))
	if string(a.Sum(nil)) != string(b.Sum(nil)) {
		t.Fatal("restored hash state diverged from the original")
	}

	if err := UnmarshalHash(sha256.New(), []byte("garbage")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage digest state: got %v, want ErrCorrupt", err)
	}
}
