package tagptr

import (
	"testing"
	"testing/quick"
)

func TestArchValidate(t *testing.T) {
	tests := []struct {
		name    string
		arch    Arch
		wantErr bool
	}{
		{name: "x86-64", arch: X8664, wantErr: false},
		{name: "arm64", arch: ARM64, wantErr: false},
		{name: "bits do not partition word", arch: Arch{Name: "bad", AddrBits: 47, TagBits: 16}, wantErr: true},
		{name: "address width too small", arch: Arch{Name: "bad", AddrBits: 16, TagBits: 48}, wantErr: true},
		{name: "address width too large", arch: Arch{Name: "bad", AddrBits: 58, TagBits: 6}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.arch.Validate()
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTableEntries(t *testing.T) {
	if got, want := X8664.TableEntries(), uint64(1<<17); got != want {
		t.Errorf("x86-64 TableEntries = %d, want %d (paper prototype)", got, want)
	}
	if got, want := ARM64.TableEntries(), uint64(1<<16); got != want {
		t.Errorf("arm64 TableEntries = %d, want %d", got, want)
	}
}

func TestPackIndexStrip(t *testing.T) {
	for _, arch := range []Arch{X8664, ARM64} {
		t.Run(arch.Name, func(t *testing.T) {
			const addr = uint64(0x7f12_3456_7890)
			for _, idx := range []uint64{0, 1, 2, 1000, arch.MaxIndex()} {
				p, err := arch.Pack(addr, idx)
				if err != nil {
					t.Fatalf("Pack(%#x, %d): %v", addr, idx, err)
				}
				if got := arch.Index(p); got != idx {
					t.Errorf("Index = %d, want %d", got, idx)
				}
				if got := arch.Strip(p); got != addr {
					t.Errorf("Strip = %#x, want %#x", got, addr)
				}
				if got, want := arch.IsTagged(p), idx != 0; got != want {
					t.Errorf("IsTagged = %v, want %v", got, want)
				}
			}
		})
	}
}

func TestPackRejectsBadInputs(t *testing.T) {
	if _, err := X8664.Pack(uint64(1)<<47, 1); err == nil {
		t.Error("Pack accepted a non-canonical address")
	}
	if _, err := X8664.Pack(0x1000, X8664.MaxIndex()+1); err == nil {
		t.Error("Pack accepted an oversized index")
	}
}

func TestMustPackPanicsOnMisuse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPack did not panic on oversized index")
		}
	}()
	X8664.MustPack(0x1000, X8664.MaxIndex()+1)
}

// TestTagSurvivesPointerArithmetic verifies the paper's core property: the
// index propagates implicitly through in-object pointer arithmetic because
// offsets never carry into the tag bits for realistically sized objects.
func TestTagSurvivesPointerArithmetic(t *testing.T) {
	p := X8664.MustPack(0x1000_0000, 0x1ABCD)
	for _, off := range []uint64{0, 1, 8, 4096, 1 << 30} {
		q := p + off
		if got, want := X8664.Index(q), uint64(0x1ABCD); got != want {
			t.Errorf("Index(p+%#x) = %#x, want %#x", off, got, want)
		}
		if got, want := X8664.Strip(q), uint64(0x1000_0000)+off; got != want {
			t.Errorf("Strip(p+%#x) = %#x, want %#x", off, got, want)
		}
	}
}

func TestRetag(t *testing.T) {
	orig := X8664.MustPack(0x2000, 42)
	// External callee returned the stripped pointer, possibly advanced.
	raw := X8664.Strip(orig) + 16
	got := X8664.Retag(raw, orig)
	if X8664.Index(got) != 42 {
		t.Errorf("Retag lost the tag: index = %d, want 42", X8664.Index(got))
	}
	if X8664.Strip(got) != 0x2010 {
		t.Errorf("Retag corrupted the address: %#x, want 0x2010", X8664.Strip(got))
	}
	// Retagging with an untagged source clears the tag.
	if gotIdx := X8664.Index(X8664.Retag(orig, 0x3000)); gotIdx != 0 {
		t.Errorf("Retag with untagged source: index = %d, want 0", gotIdx)
	}
}

// TestPackStripProperty property-checks the round trip over random canonical
// addresses and indices for both architectures.
func TestPackStripProperty(t *testing.T) {
	for _, arch := range []Arch{X8664, ARM64} {
		arch := arch
		prop := func(addrSeed, idxSeed uint64) bool {
			addr := addrSeed & ((uint64(1) << arch.AddrBits) - 1)
			idx := idxSeed & arch.MaxIndex()
			p, err := arch.Pack(addr, idx)
			if err != nil {
				return false
			}
			return arch.Index(p) == idx && arch.Strip(p) == addr
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
	}
}
