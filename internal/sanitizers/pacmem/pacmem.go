// Package pacmem models PACMem (CCS 2022): spatial and temporal memory
// safety enforced through ARM Pointer Authentication, with object metadata
// reached through the authenticated pointer. Behaviourally this is an
// object-granular tagged-pointer scheme: it detects everything CECSan does
// EXCEPT sub-object overflows (Table II's §IV.B observation), so the model
// reuses the core runtime with sub-object narrowing disabled.
//
// PACMem is closed-source and its evaluation excluded Juliet cases needing
// external input (11,531 of 15,752); the harness applies the same subset.
package pacmem

import (
	"cecsan/internal/core"
	"cecsan/internal/rt"
	"cecsan/internal/tagptr"
)

// options returns the PACMem configuration of the core runtime.
func options() core.Options {
	opts := core.DefaultOptions()
	opts.Name = "PACMem"
	opts.Arch = tagptr.ARM64 // PA is an ARM64 feature
	opts.SubObject = false
	return opts
}

// ProfileFor derives the PACMem instrumentation profile without
// constructing a runtime (no metadata table is allocated).
func ProfileFor() rt.Profile { return core.ProfileFor(options()) }

// Sanitizer returns the PACMem model bundle.
func Sanitizer() (rt.Sanitizer, error) {
	return core.Sanitizer(options())
}

// HardenedProfileFor derives the profile of the temporally hardened variant
// (identical instrumentation; the hardening is runtime-side).
func HardenedProfileFor() rt.Profile { return core.ProfileFor(core.Harden(options())) }

// HardenedSanitizer returns the PACMem model with the temporal-reuse
// mitigations (generation stamping + address quarantine) layered on.
func HardenedSanitizer() (rt.Sanitizer, error) {
	return core.Sanitizer(core.Harden(options()))
}
