package fuzz

import (
	"os"
	"path/filepath"
	"testing"

	"cecsan/csrc"
	"cecsan/internal/core"
	"cecsan/internal/engine"
	"cecsan/internal/harness"
	"cecsan/internal/rt"
	"cecsan/internal/sanitizers"
)

// TestReplayUAFTagReuse replays the minimized staged tag-reuse reproducer as
// a standing regression: the differential outcome matrix it documents
// (SoftBound reports the UAF through its key/lock pair; every tag- or
// redzone-based tool is silent because the entry index / chunk was recycled;
// HWASan is probabilistic) must not drift as runtimes evolve. A drift here
// means either a model regression or a genuine detection change — both worth
// a human look before re-pinning.
func TestReplayUAFTagReuse(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "uaf_tag_reuse.csc"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	p, err := csrc.Compile(string(src))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	// silent = must run to completion with no report; detect = must report a
	// use-after-free; HWASan is legitimately either (retag on free/malloc).
	expect := map[sanitizers.Name]string{
		sanitizers.Native:    "silent",
		sanitizers.CECSan:    "silent",
		sanitizers.PACMem:    "silent",
		sanitizers.CryptSan:  "silent",
		sanitizers.ASan:      "silent",
		sanitizers.ASanLite:  "silent",
		sanitizers.SoftBound: "detect",
		sanitizers.HWASan:    "either",
	}
	for _, tool := range sanitizers.All() {
		eng, err := engine.New(tool, engine.Options{RuntimeSeed: 1})
		if err != nil {
			t.Fatalf("engine.New(%s): %v", tool, err)
		}
		res, rerr := eng.Run(p)
		if rerr != nil {
			t.Fatalf("%s: Run: %v", tool, rerr)
		}
		outcome := harness.Classify(res)
		switch expect[tool] {
		case "silent":
			if outcome != harness.OutcomeClean {
				t.Errorf("%s: outcome %v (violation=%v err=%v), want clean",
					tool, outcome, res.Violation, res.Err)
			}
		case "detect":
			if outcome != harness.OutcomeDetected {
				t.Errorf("%s: outcome %v, want detected", tool, outcome)
			} else if res.Violation.Kind != rt.KindUseAfterFree {
				t.Errorf("%s: reported %v, want use-after-free", tool, res.Violation.Kind)
			}
		case "either":
			if outcome != harness.OutcomeClean && outcome != harness.OutcomeDetected {
				t.Errorf("%s: outcome %v, want clean or detected", tool, outcome)
			}
		default:
			t.Fatalf("no expectation for %s", tool)
		}
	}
}

// TestReplayUAFTagReuseHardened is the other half of the standing matrix:
// the same reproducer that the default CECSan profile must miss (pinned
// above) must be caught by every temporal-hardening mode. Generation
// stamping reports the violation as a use-after-free (the stale tag fails
// against its own entry); quarantine-only detects through spatial bounds —
// the table index is recycled but the chunk address is not, so the stale
// pointer lands outside the rebuilt entry's bounds and the exact kind is an
// implementation detail this test deliberately leaves open.
func TestReplayUAFTagReuseHardened(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "uaf_tag_reuse.csc"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	p, err := csrc.Compile(string(src))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	genOnly := core.DefaultOptions()
	genOnly.TemporalGenerations = true
	quarOnly := core.DefaultOptions()
	quarOnly.QuarantineBytes = core.DefaultQuarantineBytes
	both := core.HardenedOptions()

	modes := []struct {
		name     string
		tool     sanitizers.Name
		override *core.Options
		wantUAF  bool // detected as use-after-free vs detected as any kind
	}{
		{"generations-only", sanitizers.CECSan, &genOnly, true},
		{"quarantine-only", sanitizers.CECSan, &quarOnly, false},
		{"both-via-override", sanitizers.CECSan, &both, true},
		{"registry-hardened", sanitizers.CECSanHardened, nil, true},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			eng, err := engine.New(mode.tool, engine.Options{RuntimeSeed: 1, CECSan: mode.override})
			if err != nil {
				t.Fatalf("engine.New: %v", err)
			}
			res, rerr := eng.Run(p)
			if rerr != nil {
				t.Fatalf("Run: %v", rerr)
			}
			if harness.Classify(res) != harness.OutcomeDetected {
				t.Fatalf("outcome %v (violation=%v err=%v), want detected",
					harness.Classify(res), res.Violation, res.Err)
			}
			if mode.wantUAF && res.Violation.Kind != rt.KindUseAfterFree {
				t.Errorf("reported %v, want use-after-free", res.Violation.Kind)
			}
		})
	}
}

// TestReplayInteriorFree pins the OpBin provenance propagation: free(o + 16)
// is built by register arithmetic, and SoftBound can only flag it if pointer
// metadata rides through the add. Before the propagation this was a
// documented SoftBound miss; it is now a mandatory detection, alongside
// CECSan's (which never depended on per-pointer metadata).
func TestReplayInteriorFree(t *testing.T) {
	p, err := csrc.Compile("func main() {\n    var o = malloc(35);\n    free(o + 16);\n    return 0;\n}\n")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, tool := range []sanitizers.Name{sanitizers.SoftBound, sanitizers.CECSan} {
		eng, err := engine.New(tool, engine.Options{RuntimeSeed: 1})
		if err != nil {
			t.Fatalf("engine.New(%s): %v", tool, err)
		}
		res, rerr := eng.Run(p)
		if rerr != nil {
			t.Fatalf("%s: Run: %v", tool, rerr)
		}
		if harness.Classify(res) != harness.OutcomeDetected {
			t.Errorf("%s: outcome %v (violation=%v err=%v), want detected",
				tool, harness.Classify(res), res.Violation, res.Err)
		} else if res.Violation.Kind != rt.KindInvalidFree {
			t.Errorf("%s: reported %v, want invalid-free", tool, res.Violation.Kind)
		}
	}
}
