package traffic

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cecsan/internal/checkpoint"
	"cecsan/internal/core"
	"cecsan/internal/engine"
	"cecsan/internal/faultinject"
	"cecsan/internal/interp"
	"cecsan/internal/obs"
	"cecsan/internal/sanitizers"
	"cecsan/prog"
)

// ServeConfig configures one campaign run.
type ServeConfig struct {
	// Spec is the validated workload spec.
	Spec *Spec
	// Seed, when nonzero, overrides the spec's seed.
	Seed uint64
	// Workers sizes the execution pool (<= 0 selects GOMAXPROCS).
	Workers int
	// MaxRequests, when nonzero, overrides the spec's max_requests bound.
	MaxRequests int
	// Duration, when nonzero, stops admission after this much wall time —
	// the bounded campaign mode CI smokes use.
	Duration time.Duration
	// QueueDepth sizes the admission queue (<= 0 = 4x workers). When the
	// producer runs open-loop (Speedup > 0) a full queue sheds the
	// request; closed-loop the producer blocks instead.
	QueueDepth int
	// Speedup > 0 replays the spec's virtual arrival schedule compressed
	// by that factor (open-loop: overload sheds). <= 0 runs closed-loop:
	// requests are admitted as fast as workers drain them, which is the
	// throughput-measurement mode.
	Speedup float64
	// Resilience, when set, arms the overload-resilience layer: CoDel-style
	// delay shedding, per-class token buckets (open-loop), bounded retries
	// with seeded backoff, per-class circuit breakers and the graceful-
	// degradation ladder. Nil keeps the pre-resilience serving path
	// byte-for-byte.
	Resilience *ResilienceConfig
	// ChaosSeed, when nonzero, arms the chaos campaign: each request's
	// injection derives from (ChaosSeed, stream index) via
	// faultinject.ChaosSchedule, and the campaign switches to per-class
	// ordered execution so its resilience accounting — summarized in
	// ChaosDigest — is byte-identical at any worker count (closed-loop).
	// Chaos implies Resilience (defaults when nil).
	ChaosSeed uint64
	// Obs, when set, registers per-class latency histograms, percentile
	// gauges and deadline/shed counters, and is passed to the engines.
	Obs *obs.Observer
	// Flight, when set, arms per-request lifecycle tracing: every generated
	// request carries a RequestTrace (deterministic ID from (seed, stream
	// index)) through admission, shedding, breaker decisions, retries and
	// engine execution, and the recorder tail-samples the finished traces.
	// Nil keeps the hot path branch-only. Chaos campaigns switch the
	// recorder to its deterministic interest classification so the retained
	// ID set is byte-identical across worker counts.
	Flight *obs.FlightRecorder
	// Stop, when set, ends admission early (signal handling in cmd/serve).
	Stop <-chan struct{}
	// Progress, when set, is called with the processed-request count every
	// 256 completions.
	Progress func(done int)
	// CheckpointPath, when set, arms periodic durable checkpointing: every
	// CheckpointEvery generated requests the producer pauses admission,
	// waits for every admitted request to reach terminal accounting (the
	// consistent cut), and atomically writes a versioned snapshot of the
	// stream position, per-class counters, histograms, breaker/ladder
	// state and digest chains. The barrier runs on the producer — never
	// inside workers — so checkpointing stays off the execution hot path.
	CheckpointPath string
	// CheckpointEvery is the number of generated requests between
	// snapshots (default 1000 when CheckpointPath is set).
	CheckpointEvery int
	// Resume, when set, restores a prior campaign's snapshot before
	// admission starts. It is validated against the spec fingerprint,
	// seed and chaos seed — a resumed campaign continues the exact same
	// deterministic stream, so its final digests are byte-identical to an
	// uninterrupted run.
	Resume *ServeCheckpoint
	// Restarts is how many times a supervisor has restarted this campaign
	// (informational; surfaced as the traffic_restarts gauge and in the
	// summary).
	Restarts int64
}

// ClassStats is one class's campaign accounting.
type ClassStats struct {
	Class            string  `json:"class"`
	Tool             string  `json:"tool"`
	Generated        int64   `json:"generated"`
	Admitted         int64   `json:"admitted"`
	Shed             int64   `json:"shed"`
	ShedBucket       int64   `json:"shed_bucket"`
	ShedDelay        int64   `json:"shed_delay"`
	Completed        int64   `json:"completed"`
	Good             int64   `json:"good"`
	Faults           int64   `json:"faults"`
	Detected         int64   `json:"detected"`
	DeadlineMisses   int64   `json:"deadline_misses"`
	Abandoned        int64   `json:"abandoned"`
	Retries          int64   `json:"retries"`
	RetrySuccesses   int64   `json:"retry_successes"`
	BreakerTrips     int64   `json:"breaker_trips"`
	BreakerRejected  int64   `json:"breaker_rejected"`
	Degradations     int64   `json:"degradations"`
	Recoveries       int64   `json:"recoveries"`
	DegradationLevel int     `json:"degradation_level"`
	ChaosInjected    int64   `json:"chaos_injected"`
	P50us            int64   `json:"p50_us"`
	P95us            int64   `json:"p95_us"`
	P99us            int64   `json:"p99_us"`
	MeanLatencyUS    float64 `json:"mean_latency_us"`
}

// ServeResult is the campaign summary (the BENCH_serve.json payload,
// minus the run metadata cmd/serve adds).
//
// Accounting invariants (chaos off or on):
//
//	generated = admitted + shed + shed_bucket
//	admitted  = completed + faults + breaker_rejected + shed_delay + abandoned
type ServeResult struct {
	Seed            uint64        `json:"seed"`
	Workers         int           `json:"workers"`
	Speedup         float64       `json:"speedup"`
	Elapsed         time.Duration `json:"-"`
	ElapsedSec      float64       `json:"elapsed_sec"`
	Generated       int64         `json:"generated"`
	Admitted        int64         `json:"admitted"`
	Shed            int64         `json:"shed"`
	ShedBucket      int64         `json:"shed_bucket"`
	ShedDelay       int64         `json:"shed_delay"`
	Completed       int64         `json:"completed"`
	Good            int64         `json:"good"`
	Faults          int64         `json:"faults"`
	Detected        int64         `json:"detected"`
	DeadlineMisses  int64         `json:"deadline_misses"`
	Abandoned       int64         `json:"abandoned"`
	Retries         int64         `json:"retries"`
	RetrySuccesses  int64         `json:"retry_successes"`
	BreakerTrips    int64         `json:"breaker_trips"`
	BreakerRejected int64         `json:"breaker_rejected"`
	Degradations    int64         `json:"degradations"`
	Recoveries      int64         `json:"recoveries"`
	ChaosInjected   int64         `json:"chaos_injected"`
	RequestsPerSec  float64       `json:"requests_per_sec"`
	GoodputPerSec   float64       `json:"goodput_per_sec"`
	CacheHitRate    float64       `json:"cache_hit_rate"`
	StreamDigest    string        `json:"stream_digest"`
	ChaosSeed       uint64        `json:"chaos_seed,omitempty"`
	ChaosDigest     string        `json:"chaos_digest,omitempty"`
	Checkpoints     int64         `json:"checkpoints,omitempty"`
	Restarts        int64         `json:"restarts,omitempty"`
	// Flight is the flight recorder's accounting (present when tracing was
	// armed); SLO is the per-class objective status (present when the spec
	// declared objectives).
	Flight  *obs.FlightSummary `json:"flight,omitempty"`
	SLO     []obs.SLOStatus    `json:"slo,omitempty"`
	Classes []ClassStats       `json:"classes"`
}

// classCounters is one class's live accounting. Counters are atomics
// because workers of every class share the pool; the histogram is the
// lock-free obs histogram.
type classCounters struct {
	generated      atomic.Int64
	admitted       atomic.Int64
	shed           atomic.Int64
	shedBucket     atomic.Int64
	shedDelay      atomic.Int64
	completed      atomic.Int64
	good           atomic.Int64
	faults         atomic.Int64
	detected       atomic.Int64
	deadlineMisses atomic.Int64
	abandoned      atomic.Int64
	retries        atomic.Int64
	retrySuccesses atomic.Int64
	chaosInjected  atomic.Int64
	lat            *obs.Histogram
}

// classState is one class's resilience machinery (nil members = mechanism
// disabled).
type classState struct {
	ladder  *ladder
	breaker *breaker
	bucket  *tokenBucket
	digest  *classDigest
}

// classDigest accumulates one class's chaos accounting chain: for every
// finalized request, in the class's deterministic stream order, it absorbs
// (stream index, outcome code, attempt count). Wall-clock-driven fields —
// latency, deadline misses, CoDel sheds — are deliberately excluded: they
// vary run to run, while everything the chain covers is a pure function of
// the request stream and the chaos schedule.
type classDigest struct {
	h hash.Hash
}

func newClassDigest(id string) *classDigest {
	h := sha256.New()
	h.Write([]byte(id))
	return &classDigest{h: h}
}

func (d *classDigest) record(idx uint64, code byte, attempts int) {
	var buf [10]byte
	binary.LittleEndian.PutUint64(buf[:8], idx)
	buf[8] = code
	buf[9] = byte(attempts)
	d.h.Write(buf[:])
}

// Outcome codes of the chaos digest chain.
const (
	outcomeClean    = 'C'
	outcomeDetected = 'D'
	outcomeFault    = 'F'
	outcomeRejected = 'R'
)

// queued is one admitted request plus its admission timestamp; latency is
// measured from admission, so queue wait counts against the deadline the
// way it would in a real serving system.
type queued struct {
	req *Request
	at  time.Time
	tr  *obs.RequestTrace // nil unless tracing is armed
}

// server carries one campaign's wiring between Serve and its loops.
type server struct {
	cfg       ServeConfig
	spec      *Spec
	seed      uint64
	workers   int
	depth     int
	resOn     bool
	rc        ResilienceConfig
	chaos     uint64
	engines   []*engine.Engine
	counters  []*classCounters
	classes   []*classState
	codel     *codel
	done      chan struct{}
	processed atomic.Int64

	// Observability v2 wiring: rec tail-samples finished request traces
	// (nil = tracing off, the branch-only default); slo/sloC evaluate the
	// spec-declared objectives (sloC is indexed by class, nil entries for
	// classes without one).
	rec  *obs.FlightRecorder
	slo  *obs.SLO
	sloC []*obs.SLOClass

	// Checkpoint machinery. admittedAll counts producer-side admissions,
	// finalized counts admitted requests that reached terminal accounting
	// in a worker; the barrier waits for them to meet. genSince and
	// ckptErr are producer-only.
	ckptEvery   int
	genSince    int
	admittedAll atomic.Int64
	finalized   atomic.Int64
	checkpoints atomic.Int64
	ckptErr     error
}

// Serve runs a campaign: a single producer walks the deterministic
// request stream and admits into a bounded queue; Workers goroutines
// drain it through per-class engines sharing one instrumentation cache.
// The request stream (and its digest) is independent of Workers,
// QueueDepth, Speedup and every resilience decision — the digest is taken
// as requests are generated, before any admission or shedding choice.
func Serve(cfg ServeConfig) (*ServeResult, error) {
	spec := cfg.Spec
	stream, err := NewStream(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.MaxRequests > 0 {
		stream.SetLimit(cfg.MaxRequests)
	}
	seed := spec.Seed
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}

	s := &server{
		cfg:     cfg,
		spec:    spec,
		seed:    seed,
		workers: workers,
		depth:   depth,
		chaos:   cfg.ChaosSeed,
		done:    make(chan struct{}),
		rec:     cfg.Flight,
	}
	if s.rec != nil && s.chaos != 0 {
		// Chaos campaigns promise a worker-count-independent retained set:
		// restrict the recorder's interest rules to deterministic signals,
		// mirroring the chaos digest's exclusion of wall-clock fields.
		s.rec.SetDeterministicOnly(true)
	}
	s.sloC = make([]*obs.SLOClass, len(spec.Clients))
	res := cfg.Resilience
	if s.chaos != 0 && res == nil {
		res = &ResilienceConfig{}
	}
	if res != nil {
		s.resOn = true
		s.rc = res.resolve()
		if s.chaos == 0 {
			s.codel = newCoDel(s.rc)
		}
	}

	// One engine per class carries that class's budgets; all classes share
	// one campaign cache so cross-class variants of the same program (if
	// any) and repeat requests hit instrumentation cache. Ladder rungs
	// share the same cache: rungs with identical instrumentation profiles
	// share entries, cheaper rungs fill their own.
	cache := engine.NewCache(0)
	s.engines = make([]*engine.Engine, len(spec.Clients))
	s.counters = make([]*classCounters, len(spec.Clients))
	s.classes = make([]*classState, len(spec.Clients))
	for i := range spec.Clients {
		c := &spec.Clients[i]
		mk := func(tool sanitizers.Name, cecsan *core.Options) (*engine.Engine, error) {
			return engine.New(tool, engine.Options{
				CECSan:          cecsan,
				Workers:         workers,
				MaxInstructions: c.Budget.MaxSteps,
				WallBudget:      time.Duration(c.Budget.WallMS * float64(time.Millisecond)),
				HeapBudget:      c.Budget.HeapBytes,
				Seed:            seed,
				RuntimeSeed:     seed,
				Obs:             cfg.Obs,
				Cache:           cache,
			})
		}
		eng, err := mk(sanitizers.Name(c.Tool), nil)
		if err != nil {
			return nil, fmt.Errorf("traffic: client %q: %w", c.ID, err)
		}
		s.engines[i] = eng
		cc := &classCounters{}
		if cfg.Obs != nil {
			cc.lat = cfg.Obs.Registry.Histogram("traffic_latency_us", obs.L("class", c.ID))
		} else {
			cc.lat = &obs.Histogram{}
		}
		s.counters[i] = cc
		if c.SLO != nil {
			if s.slo == nil {
				s.slo = obs.NewSLO()
			}
			s.sloC[i] = s.slo.Add(obs.SLOConfig{
				Class:          c.ID,
				Target:         c.SLO.Target,
				P99ObjectiveUS: int64(c.SLO.P99MS * 1000),
				ShortWindow:    time.Duration(c.SLO.ShortWindowS * float64(time.Second)),
				LongWindow:     time.Duration(c.SLO.LongWindowS * float64(time.Second)),
			}, cc.lat)
		}

		cls := &classState{}
		if s.resOn {
			// The full rung shares the class engine so legacy and
			// resilient paths run identical configurations.
			lad, err := buildLadder(sanitizers.Name(c.Tool), s.rc, mk)
			if err != nil {
				return nil, fmt.Errorf("traffic: client %q: %w", c.ID, err)
			}
			lad.rungs[0].eng = eng
			cls.ladder = lad
			cls.breaker = newBreaker(s.rc)
			if cfg.Speedup > 0 && s.rc.BucketHeadroom > 0 {
				share := c.RateFraction * spec.AggregateRate * cfg.Speedup
				rate := share * s.rc.BucketHeadroom
				// Burst absorbs ~20ms of the class's allowance: pacing
				// overshoot arrives in timer-granularity bursts that are
				// jitter, not overload, and must not drain the bucket.
				burst := rate * 0.02
				if burst < float64(depth) {
					burst = float64(depth)
				}
				cls.bucket = newTokenBucket(rate, burst)
			}
		}
		if s.chaos != 0 {
			cls.digest = newClassDigest(c.ID)
		}
		s.classes[i] = cls
		if cfg.Obs != nil {
			registerClassGauges(cfg.Obs, c.ID, cc, cls)
		}

		// Warm the instrumentation cache with the class's whole variant
		// family before admission starts, like a service pre-loading its
		// handlers.
		progs := make([]*prog.Program, 0, c.Program.Variants)
		for _, v := range stream.Variants(i) {
			progs = append(progs, v.Program)
		}
		eng.Preinstrument(progs)
	}

	if cfg.CheckpointPath != "" {
		s.ckptEvery = cfg.CheckpointEvery
		if s.ckptEvery <= 0 {
			s.ckptEvery = defaultCheckpointEvery
		}
	}
	if cfg.Resume != nil {
		if err := s.restore(stream, cfg.Resume); err != nil {
			return nil, err
		}
	}
	if cfg.Obs != nil {
		reg := cfg.Obs.Registry
		reg.GaugeFunc("traffic_checkpoints", func() float64 { return float64(s.checkpoints.Load()) })
		reg.GaugeFunc("traffic_restarts", func() float64 { return float64(cfg.Restarts) })
		if s.slo != nil {
			s.slo.Register(reg)
			cfg.Obs.SLO = s.slo
		}
		// Every class's variant family is preinstrumented: the service can
		// usefully answer, so the live endpoint's /readyz flips to ready.
		cfg.Obs.Health.SetReady(true)
	}

	var closeOnce sync.Once
	stop := func() { closeOnce.Do(func() { close(s.done) }) }
	if cfg.Duration > 0 {
		t := time.AfterFunc(cfg.Duration, stop)
		defer t.Stop()
	}
	if cfg.Stop != nil {
		go func() {
			select {
			case <-cfg.Stop:
				stop()
			case <-s.done:
			}
		}()
	}

	start := time.Now()
	if s.chaos != 0 {
		s.runChaos(stream, start)
	} else {
		s.runShared(stream, start)
	}
	elapsed := time.Since(start)
	stop()
	if s.ckptErr != nil {
		// A campaign that cannot persist its promised snapshots must fail
		// loudly, not degrade into an uncheckpointed run.
		return nil, s.ckptErr
	}

	return s.collect(stream, elapsed), nil
}

// defaultCheckpointEvery is the snapshot cadence in generated requests.
const defaultCheckpointEvery = 1000

// maybeCheckpoint runs the producer-side snapshot cadence: called after
// every generated request, it triggers the barrier once ckptEvery requests
// have accumulated. Returns false when the producer must stop (stop signal
// during the drain, or a snapshot write failure).
func (s *server) maybeCheckpoint(stream *Stream) bool {
	if s.ckptEvery == 0 {
		return true
	}
	s.genSince++
	if s.genSince < s.ckptEvery {
		return true
	}
	s.genSince = 0
	return s.checkpointNow(stream)
}

// checkpointNow is the consistent-cut barrier. Admission is paused (the
// producer is right here, not producing); once every admitted request has
// reached terminal accounting the campaign state is a pure function of the
// request stream — no request is in flight between generation and its
// outcome — and the snapshot is captured and written durably.
func (s *server) checkpointNow(stream *Stream) bool {
	for s.finalized.Load() != s.admittedAll.Load() {
		select {
		case <-s.done:
			return false
		default:
			time.Sleep(50 * time.Microsecond)
		}
	}
	// A stop during (or just before) the drain means workers may have
	// finalized queued requests as abandoned — those are excluded from the
	// digest chains, so a snapshot taken now would lose them permanently.
	// The abandon path only runs after s.done is closed, and that close is
	// visible here once any abandon's finalized increment is, so refusing
	// on a closed s.done keeps every written snapshot a consistent cut.
	select {
	case <-s.done:
		return false
	default:
	}
	ck, err := s.capture(stream)
	if err == nil {
		err = checkpoint.Save(s.cfg.CheckpointPath, checkpoint.KindServe, ck)
	}
	if err != nil {
		s.ckptErr = fmt.Errorf("traffic: checkpoint: %w", err)
		return false
	}
	s.checkpoints.Add(1)
	return true
}

// runShared is the shared-queue execution loop: legacy when resilience is
// off, with CoDel shedding, breakers, retries and the ladder layered on
// when it is. Workers fast-drain the queue as abandoned once the campaign
// is stopped, so shutdown latency is bounded by in-flight runs, not by a
// saturated backlog.
func (s *server) runShared(stream *Stream, start time.Time) {
	reqCh := make(chan queued, s.depth)
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range reqCh {
				cc := s.counters[q.req.ClassIndex]
				select {
				case <-s.done:
					// Stopped: account the backlog instead of running it.
					cc.abandoned.Add(1)
					s.finishTrace(q.tr, obs.OutcomeAbandoned)
					s.finalized.Add(1)
					continue
				default:
				}
				now := time.Now()
				if s.codel != nil && s.codel.shed(now, now.Sub(q.at)) {
					cc.shedDelay.Add(1)
					s.recordSLO(q.req.ClassIndex, false)
					s.finishTrace(q.tr, obs.OutcomeShedDelay)
					s.finalized.Add(1)
					continue
				}
				if s.resOn {
					s.process(q.req.ClassIndex, q, faultinject.ChaosPlan{})
				} else {
					s.runLegacy(q)
				}
				s.finalized.Add(1)
				s.progress()
			}
		}()
	}

producer:
	for {
		select {
		case <-s.done:
			break producer
		default:
		}
		req := stream.Next()
		if req == nil {
			break
		}
		cc := s.counters[req.ClassIndex]
		cc.generated.Add(1)
		tr := s.newTrace(req)
		if s.cfg.Speedup > 0 {
			target := start.Add(time.Duration(float64(req.Arrival) / s.cfg.Speedup))
			if d := time.Until(target); d > 0 {
				select {
				case <-s.done:
					break producer
				case <-time.After(d):
				}
			}
			if b := s.classes[req.ClassIndex].bucket; b != nil && !b.allow(time.Now()) {
				// Class over its burst allowance: shed at its own bucket
				// before it can crowd the shared queue.
				cc.shedBucket.Add(1)
				s.recordSLO(req.ClassIndex, false)
				s.finishTrace(tr, obs.OutcomeShedBucket)
				if !s.maybeCheckpoint(stream) {
					break producer
				}
				continue
			}
			// The admit event goes on before the send: a delivered trace
			// belongs to the worker. If the send fails the producer still
			// owns it and pops the event back off.
			if tr != nil {
				tr.Add("admit")
			}
			select {
			case reqCh <- queued{req: req, at: time.Now(), tr: tr}:
				cc.admitted.Add(1)
				s.admittedAll.Add(1)
			default:
				// Queue full under overload: shed instead of building an
				// unbounded backlog.
				cc.shed.Add(1)
				s.recordSLO(req.ClassIndex, false)
				if tr != nil {
					tr.Events = tr.Events[:len(tr.Events)-1]
				}
				s.finishTrace(tr, obs.OutcomeShedQueue)
			}
		} else {
			if tr != nil {
				tr.Add("admit")
			}
			select {
			case reqCh <- queued{req: req, at: time.Now(), tr: tr}:
				cc.admitted.Add(1)
				s.admittedAll.Add(1)
			case <-s.done:
				break producer
			}
		}
		if !s.maybeCheckpoint(stream) {
			break producer
		}
	}
	close(reqCh)
	wg.Wait()
}

// runChaos is the deterministic chaos execution loop. Each class gets its
// own bounded channel drained by exactly one consumer, so the class's
// requests — and therefore its breaker transitions, retries and ladder
// moves — happen in stream order regardless of concurrency; a semaphore of
// Workers slots bounds simultaneous execution. Per-class accounting chains
// then combine (in spec order) into a chaos digest that is byte-identical
// at any worker count for a closed-loop campaign.
func (s *server) runChaos(stream *Stream, start time.Time) {
	chans := make([]chan queued, len(s.spec.Clients))
	for i := range chans {
		chans[i] = make(chan queued, s.depth)
	}
	sem := make(chan struct{}, s.workers)
	var wg sync.WaitGroup
	for i := range chans {
		wg.Add(1)
		go func(ci int, ch <-chan queued) {
			defer wg.Done()
			cc := s.counters[ci]
			for q := range ch {
				select {
				case <-s.done:
					// Stop is wall-clock territory: abandoned requests are
					// excluded from the digest chain by construction.
					cc.abandoned.Add(1)
					s.finishTrace(q.tr, obs.OutcomeAbandoned)
					s.finalized.Add(1)
					continue
				default:
				}
				sem <- struct{}{}
				plan := faultinject.ChaosSchedule(s.chaos, uint64(q.req.Index))
				code, attempts := s.process(ci, q, plan)
				<-sem
				s.classes[ci].digest.record(uint64(q.req.Index), code, attempts)
				s.finalized.Add(1)
				s.progress()
			}
		}(i, chans[i])
	}

producer:
	for {
		select {
		case <-s.done:
			break producer
		default:
		}
		req := stream.Next()
		if req == nil {
			break
		}
		cc := s.counters[req.ClassIndex]
		cc.generated.Add(1)
		tr := s.newTrace(req)
		if s.cfg.Speedup > 0 {
			target := start.Add(time.Duration(float64(req.Arrival) / s.cfg.Speedup))
			if d := time.Until(target); d > 0 {
				select {
				case <-s.done:
					break producer
				case <-time.After(d):
				}
			}
			if tr != nil {
				tr.Add("admit")
			}
			select {
			case chans[req.ClassIndex] <- queued{req: req, at: time.Now(), tr: tr}:
				cc.admitted.Add(1)
				s.admittedAll.Add(1)
			default:
				cc.shed.Add(1)
				s.recordSLO(req.ClassIndex, false)
				if tr != nil {
					tr.Events = tr.Events[:len(tr.Events)-1]
				}
				s.finishTrace(tr, obs.OutcomeShedQueue)
			}
		} else {
			if tr != nil {
				tr.Add("admit")
			}
			select {
			case chans[req.ClassIndex] <- queued{req: req, at: time.Now(), tr: tr}:
				cc.admitted.Add(1)
				s.admittedAll.Add(1)
			case <-s.done:
				break producer
			}
		}
		if !s.maybeCheckpoint(stream) {
			break producer
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
}

// process executes one admitted request under the resilience policy:
// breaker gate, chaos arming on the first attempt, bounded retries with
// seeded backoff, ladder-selected engine. It returns the digest outcome.
func (s *server) process(ci int, q queued, chaos faultinject.ChaosPlan) (code byte, attempts int) {
	cc := s.counters[ci]
	cls := s.classes[ci]
	tr := q.tr
	if tr != nil {
		ev := tr.Add("dequeue")
		ev.DurUS = time.Since(q.at).Microseconds()
	}
	if cls.breaker != nil && !cls.breaker.allow() {
		if tr != nil {
			tr.Add("breaker_reject")
		}
		s.recordSLO(ci, false)
		s.finishTrace(tr, obs.OutcomeRejected)
		return outcomeRejected, 0
	}
	if !chaos.Zero() {
		cc.chaosInjected.Add(1)
	}
	armed := chaos
	for {
		attempts++
		if armed.SlowdownUS > 0 {
			time.Sleep(time.Duration(armed.SlowdownUS) * time.Microsecond)
		}
		eng := s.engines[ci]
		rungName := "full"
		if cls.ladder != nil {
			eng, rungName = cls.ladder.engineRung()
		}
		if tr != nil {
			ev := tr.Add("attempt")
			ev.Attempt = attempts
			ev.Detail = rungName
		}
		res, err := eng.RunPlanned(q.req.Program, engine.PlannedRun{
			Plan:        armed.Run,
			BypassCache: armed.CacheBypass,
			Trace:       tr,
		}, q.req.Inputs...)
		fault := err != nil || res == nil || res.Err != nil
		if cls.breaker != nil {
			if cls.breaker.record(fault) && cls.ladder != nil {
				cls.ladder.onTrip()
			}
		}
		if fault && attempts <= s.rc.RetryMax && s.rc.RetryMax >= 0 && retryable(armed, res, err) {
			cc.retries.Add(1)
			d := backoffUS(s.rc, s.seed, uint64(q.req.Index), attempts)
			if tr != nil {
				ev := tr.Add("retry")
				ev.Attempt = attempts
				ev.ValueUS = d
				ev.Detail = faultDetail(err, res)
			}
			if d > 0 {
				time.Sleep(time.Duration(d) * time.Microsecond)
			}
			// A transient cleared: the retry runs with the plan dropped.
			armed = faultinject.ChaosPlan{}
			continue
		}
		lat := time.Since(q.at)
		cc.lat.Observe(lat.Microseconds())
		missed := q.req.Deadline > 0 && lat > q.req.Deadline
		if missed {
			cc.deadlineMisses.Add(1)
		}
		if tr != nil {
			tr.Attempts = attempts
			tr.Retried = attempts > 1
			tr.DeadlineMiss = missed
		}
		if fault {
			cc.faults.Add(1)
			if cls.ladder != nil {
				cls.ladder.onFault()
			}
			if tr != nil {
				tr.Add("fault").Detail = faultDetail(err, res)
			}
			s.recordSLO(ci, false)
			s.finishTrace(tr, obs.OutcomeFault)
			return outcomeFault, attempts
		}
		cc.completed.Add(1)
		if !missed {
			cc.good.Add(1)
		}
		if attempts > 1 {
			cc.retrySuccesses.Add(1)
		}
		if cls.ladder != nil {
			cls.ladder.onClean()
		}
		s.recordSLO(ci, !missed)
		if res.Violation != nil {
			cc.detected.Add(1)
			s.finishTrace(tr, obs.OutcomeDetected)
			return outcomeDetected, attempts
		}
		s.finishTrace(tr, obs.OutcomeClean)
		return outcomeClean, attempts
	}
}

// faultDetail classifies a failed execution for trace annotations: the
// engine fault class when one is attached, otherwise a coarse bucket.
func faultDetail(err error, res *interp.Result) string {
	if err != nil {
		return "engine_error"
	}
	if res == nil {
		return "no_result"
	}
	if fo := engine.AsFault(res.Err); fo != nil {
		return fo.Class.String()
	}
	return "error"
}

func (s *server) progress() {
	n := s.processed.Add(1)
	if s.cfg.Progress != nil && n%256 == 0 {
		s.cfg.Progress(int(n))
	}
}

// newTrace starts a lifecycle trace for req when tracing is armed; nil
// otherwise, keeping every downstream touch a single branch.
func (s *server) newTrace(req *Request) *obs.RequestTrace {
	if s.rec == nil {
		return nil
	}
	return obs.NewRequestTrace(s.seed, uint64(req.Index), req.Class)
}

// finishTrace hands a trace to the flight recorder with its terminal
// outcome. The trace must not be touched afterwards.
func (s *server) finishTrace(tr *obs.RequestTrace, outcome string) {
	if tr != nil {
		s.rec.Finish(tr, outcome)
	}
}

// recordSLO accounts one terminal service decision against the class
// objective. Abandoned requests are deliberately excluded — they are a
// stop-drain artifact of campaign shutdown, not a serving decision, and
// counting them would burn the budget on the way out.
func (s *server) recordSLO(ci int, good bool) {
	if c := s.sloC[ci]; c != nil {
		c.Record(good)
	}
}

// collect assembles the campaign summary.
func (s *server) collect(stream *Stream, elapsed time.Duration) *ServeResult {
	res := &ServeResult{
		Seed:         s.seed,
		Workers:      s.workers,
		Speedup:      s.cfg.Speedup,
		Elapsed:      elapsed,
		ElapsedSec:   elapsed.Seconds(),
		StreamDigest: stream.Digest(),
		ChaosSeed:    s.chaos,
		Checkpoints:  s.checkpoints.Load(),
		Restarts:     s.cfg.Restarts,
	}
	var hits, misses int64
	for _, eng := range s.engines {
		st := eng.Stats()
		hits += st.CacheHits
		misses += st.CacheMisses
	}
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	combined := sha256.New()
	for i := range s.spec.Clients {
		c := &s.spec.Clients[i]
		cc := s.counters[i]
		cls := s.classes[i]
		cs := ClassStats{
			Class:          c.ID,
			Tool:           c.Tool,
			Generated:      cc.generated.Load(),
			Admitted:       cc.admitted.Load(),
			Shed:           cc.shed.Load(),
			ShedBucket:     cc.shedBucket.Load(),
			ShedDelay:      cc.shedDelay.Load(),
			Completed:      cc.completed.Load(),
			Good:           cc.good.Load(),
			Faults:         cc.faults.Load(),
			Detected:       cc.detected.Load(),
			DeadlineMisses: cc.deadlineMisses.Load(),
			Abandoned:      cc.abandoned.Load(),
			Retries:        cc.retries.Load(),
			RetrySuccesses: cc.retrySuccesses.Load(),
			ChaosInjected:  cc.chaosInjected.Load(),
			P50us:          cc.lat.Quantile(0.50),
			P95us:          cc.lat.Quantile(0.95),
			P99us:          cc.lat.Quantile(0.99),
		}
		if cls.breaker != nil {
			cs.BreakerTrips = cls.breaker.trips.Load()
			cs.BreakerRejected = cls.breaker.rejected.Load()
		}
		if cls.ladder != nil {
			cs.Degradations = cls.ladder.degradations.Load()
			cs.Recoveries = cls.ladder.recoveries.Load()
			cs.DegradationLevel = int(cls.ladder.levelG.Load())
		}
		if n := cc.lat.Count(); n > 0 {
			cs.MeanLatencyUS = float64(cc.lat.Sum()) / float64(n)
		}
		if cls.digest != nil {
			combined.Write(cls.digest.h.Sum(nil))
		}
		res.Classes = append(res.Classes, cs)
		res.Generated += cs.Generated
		res.Admitted += cs.Admitted
		res.Shed += cs.Shed
		res.ShedBucket += cs.ShedBucket
		res.ShedDelay += cs.ShedDelay
		res.Completed += cs.Completed
		res.Good += cs.Good
		res.Faults += cs.Faults
		res.Detected += cs.Detected
		res.DeadlineMisses += cs.DeadlineMisses
		res.Abandoned += cs.Abandoned
		res.Retries += cs.Retries
		res.RetrySuccesses += cs.RetrySuccesses
		res.BreakerTrips += cs.BreakerTrips
		res.BreakerRejected += cs.BreakerRejected
		res.Degradations += cs.Degradations
		res.Recoveries += cs.Recoveries
		res.ChaosInjected += cs.ChaosInjected
	}
	if s.chaos != 0 {
		res.ChaosDigest = hex.EncodeToString(combined.Sum(nil))
	}
	if elapsed > 0 {
		res.RequestsPerSec = float64(res.Completed+res.Faults) / elapsed.Seconds()
		res.GoodputPerSec = float64(res.Good) / elapsed.Seconds()
	}
	if s.rec != nil {
		sum := s.rec.Summary()
		res.Flight = &sum
	}
	if s.slo != nil {
		res.SLO = s.slo.Status()
	}
	return res
}

// runLegacy executes one admitted request on the pre-resilience path and
// accounts it. A sanitizer detection still counts as completed (the service
// answered); only harness faults (panic, budget exhaustion) and engine
// errors do not.
func (s *server) runLegacy(q queued) {
	ci := q.req.ClassIndex
	eng := s.engines[ci]
	cc := s.counters[ci]
	tr := q.tr
	if tr != nil {
		ev := tr.Add("dequeue")
		ev.DurUS = time.Since(q.at).Microseconds()
	}
	execStart := time.Now()
	res, err := eng.Run(q.req.Program, q.req.Inputs...)
	if tr != nil {
		// Run retries recycled panics internally, so the legacy path gets
		// one aggregate span instead of instrument/run/reset sub-spans.
		tr.Span("execute", execStart, time.Since(execStart))
	}
	lat := time.Since(q.at)
	cc.lat.Observe(lat.Microseconds())
	missed := q.req.Deadline > 0 && lat > q.req.Deadline
	if missed {
		cc.deadlineMisses.Add(1)
	}
	if tr != nil {
		tr.Attempts = 1
		tr.DeadlineMiss = missed
	}
	if err != nil || engine.AsFault(res.Err) != nil || res.Err != nil {
		cc.faults.Add(1)
		if tr != nil {
			tr.Add("fault").Detail = faultDetail(err, res)
		}
		s.recordSLO(ci, false)
		s.finishTrace(tr, obs.OutcomeFault)
		return
	}
	cc.completed.Add(1)
	if !missed {
		cc.good.Add(1)
	}
	s.recordSLO(ci, !missed)
	if res.Violation != nil {
		cc.detected.Add(1)
		s.finishTrace(tr, obs.OutcomeDetected)
		return
	}
	s.finishTrace(tr, obs.OutcomeClean)
}

// registerClassGauges mirrors a class's counters, resilience state and
// latency percentiles into the obs registry, so a live /metrics scrape sees
// the campaign: admission sheds, breaker state and ladder level included.
func registerClassGauges(o *obs.Observer, id string, cc *classCounters, cls *classState) {
	l := obs.L("class", id)
	reg := o.Registry
	gauge := func(name string, fn func() int64) {
		reg.GaugeFunc(name, func() float64 { return float64(fn()) }, l)
	}
	gauge("traffic_generated", cc.generated.Load)
	gauge("traffic_admitted", cc.admitted.Load)
	gauge("traffic_shed", cc.shed.Load)
	gauge("traffic_shed_bucket", cc.shedBucket.Load)
	gauge("traffic_shed_delay", cc.shedDelay.Load)
	gauge("traffic_completed", cc.completed.Load)
	gauge("traffic_good", cc.good.Load)
	gauge("traffic_faults", cc.faults.Load)
	gauge("traffic_detected", cc.detected.Load)
	gauge("traffic_deadline_misses", cc.deadlineMisses.Load)
	gauge("traffic_abandoned", cc.abandoned.Load)
	gauge("traffic_retries", cc.retries.Load)
	gauge("traffic_retry_successes", cc.retrySuccesses.Load)
	gauge("traffic_chaos_injected", cc.chaosInjected.Load)
	gauge("traffic_latency_p50_us", func() int64 { return cc.lat.Quantile(0.50) })
	gauge("traffic_latency_p95_us", func() int64 { return cc.lat.Quantile(0.95) })
	gauge("traffic_latency_p99_us", func() int64 { return cc.lat.Quantile(0.99) })
	if cls.breaker != nil {
		gauge("traffic_breaker_trips", cls.breaker.trips.Load)
		gauge("traffic_breaker_rejected", cls.breaker.rejected.Load)
		gauge("traffic_breaker_state", func() int64 { return int64(cls.breaker.stateG.Load()) })
	}
	if cls.ladder != nil {
		gauge("traffic_degradations", cls.ladder.degradations.Load)
		gauge("traffic_recoveries", cls.ladder.recoveries.Load)
		gauge("traffic_degradation_level", func() int64 { return int64(cls.ladder.levelG.Load()) })
	}
}
