package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// sloRingSeconds sizes the per-second bucket ring behind the burn-rate
// windows. Windows longer than the ring cannot be evaluated, so MaxSLOWindow
// bounds what configs may ask for (with slack for ring-wrap staleness).
const sloRingSeconds = 256

// MaxSLOWindow is the longest burn-rate window an SLOConfig may declare.
const MaxSLOWindow = 240 * time.Second

// Default burn-rate windows (the classic short/long multi-window pair,
// scaled to campaign timescales).
const (
	DefaultSLOShortWindow = 10 * time.Second
	DefaultSLOLongWindow  = 60 * time.Second
)

// SLOConfig declares one class's service-level objectives.
type SLOConfig struct {
	// Class names the traffic class the objective covers.
	Class string
	// Target is the goodput objective in (0, 1): the fraction of terminally
	// accounted requests that must be good (completed within deadline).
	// 1 - Target is the error budget.
	Target float64
	// P99ObjectiveUS, when > 0, additionally bounds the class's p99 latency
	// (read from the class latency histogram).
	P99ObjectiveUS int64
	// ShortWindow and LongWindow are the burn-rate evaluation windows
	// (defaults 10s / 60s; both clamped to MaxSLOWindow).
	ShortWindow time.Duration
	LongWindow  time.Duration
}

// sloBucket is one second's worth of windowed accounting. sec tags which
// wall-clock second the counts belong to; a bucket whose tag is stale is
// reset by the first writer of the new second and skipped by readers.
type sloBucket struct {
	sec   atomic.Int64
	good  atomic.Int64
	total atomic.Int64
}

// SLOClass evaluates one class's objectives: cumulative good/total counters
// for budget-used, plus a per-second ring for the multi-window burn rates.
// Record is two-to-four atomic adds — safe from any worker.
type SLOClass struct {
	cfg  SLOConfig
	lat  *Histogram // class latency distribution; nil disables the p99 check
	good atomic.Int64
	tot  atomic.Int64
	ring [sloRingSeconds]sloBucket
}

// Record accounts one terminally accounted request. Across a second
// boundary two writers can race the bucket reset; at worst a handful of
// counts land in the wrong second — monitoring-grade, never touching the
// cumulative counters the budget math uses.
func (c *SLOClass) Record(good bool) {
	c.recordAt(good, time.Now().Unix())
}

func (c *SLOClass) recordAt(good bool, sec int64) {
	c.tot.Add(1)
	if good {
		c.good.Add(1)
	}
	b := &c.ring[uint64(sec)%sloRingSeconds]
	for {
		old := b.sec.Load()
		if old == sec {
			break
		}
		if b.sec.CompareAndSwap(old, sec) {
			b.good.Store(0)
			b.total.Store(0)
			break
		}
	}
	b.total.Add(1)
	if good {
		b.good.Add(1)
	}
}

// window sums the ring buckets inside (now-w, now].
func (c *SLOClass) window(nowSec int64, w time.Duration) (good, total int64) {
	ws := int64(w / time.Second)
	if ws < 1 {
		ws = 1
	}
	for i := range c.ring {
		b := &c.ring[i]
		sec := b.sec.Load()
		if sec > nowSec-ws && sec <= nowSec {
			good += b.good.Load()
			total += b.total.Load()
		}
	}
	return good, total
}

// SLOStatus is one class's evaluated objective — the /slo payload and the
// serve summary's slo entries.
type SLOStatus struct {
	Class  string  `json:"class"`
	Target float64 `json:"target"`
	Good   int64   `json:"good"`
	Total  int64   `json:"total"`
	// BudgetUsed is the cumulative error-budget consumption: the observed
	// bad fraction over (1 - Target). >= 1 means the budget is exhausted.
	BudgetUsed float64 `json:"budget_used"`
	Exhausted  bool    `json:"exhausted"`
	// BurnShort/BurnLong are the windowed burn rates: the bad fraction
	// inside the window over the error budget. A sustained burn rate of 1
	// consumes exactly the budget; >> 1 is an active incident.
	BurnShort      float64 `json:"burn_rate_short"`
	BurnLong       float64 `json:"burn_rate_long"`
	ShortWindowSec float64 `json:"short_window_sec"`
	LongWindowSec  float64 `json:"long_window_sec"`
	P99US          int64   `json:"p99_us,omitempty"`
	P99ObjectiveUS int64   `json:"p99_objective_us,omitempty"`
	P99Violated    bool    `json:"p99_violated,omitempty"`
}

// Status evaluates the class now.
func (c *SLOClass) Status() SLOStatus {
	return c.statusAt(time.Now().Unix())
}

func (c *SLOClass) statusAt(nowSec int64) SLOStatus {
	budget := 1 - c.cfg.Target
	st := SLOStatus{
		Class:          c.cfg.Class,
		Target:         c.cfg.Target,
		Good:           c.good.Load(),
		Total:          c.tot.Load(),
		ShortWindowSec: c.cfg.ShortWindow.Seconds(),
		LongWindowSec:  c.cfg.LongWindow.Seconds(),
		P99ObjectiveUS: c.cfg.P99ObjectiveUS,
	}
	if st.Total > 0 && budget > 0 {
		bad := float64(st.Total-st.Good) / float64(st.Total)
		st.BudgetUsed = bad / budget
	}
	st.Exhausted = st.BudgetUsed >= 1
	burn := func(w time.Duration) float64 {
		good, total := c.window(nowSec, w)
		if total == 0 || budget <= 0 {
			return 0
		}
		return (float64(total-good) / float64(total)) / budget
	}
	st.BurnShort = burn(c.cfg.ShortWindow)
	st.BurnLong = burn(c.cfg.LongWindow)
	if c.cfg.P99ObjectiveUS > 0 && c.lat != nil {
		st.P99US = c.lat.Quantile(0.99)
		st.P99Violated = st.P99US > c.cfg.P99ObjectiveUS
	}
	return st
}

// SLO is the campaign's objective set: one SLOClass per declaring class, in
// registration order.
type SLO struct {
	mu      sync.Mutex
	classes []*SLOClass
}

// NewSLO returns an empty objective set.
func NewSLO() *SLO { return &SLO{} }

// Add registers a class objective. lat, when non-nil, is the class latency
// histogram the p99 objective reads. Windows default and clamp here.
func (s *SLO) Add(cfg SLOConfig, lat *Histogram) *SLOClass {
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = DefaultSLOShortWindow
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = DefaultSLOLongWindow
	}
	if cfg.ShortWindow > MaxSLOWindow {
		cfg.ShortWindow = MaxSLOWindow
	}
	if cfg.LongWindow > MaxSLOWindow {
		cfg.LongWindow = MaxSLOWindow
	}
	c := &SLOClass{cfg: cfg, lat: lat}
	s.mu.Lock()
	s.classes = append(s.classes, c)
	s.mu.Unlock()
	return c
}

// Status evaluates every class, in registration order.
func (s *SLO) Status() []SLOStatus {
	s.mu.Lock()
	classes := append([]*SLOClass(nil), s.classes...)
	s.mu.Unlock()
	out := make([]SLOStatus, 0, len(classes))
	nowSec := time.Now().Unix()
	for _, c := range classes {
		out = append(out, c.statusAt(nowSec))
	}
	return out
}

// Register mirrors the objective set into the registry as slo_* gauges, so
// a /metrics scrape sees budget consumption and live burn rates.
func (s *SLO) Register(r *Registry) {
	r.SetHelp("slo_target", "declared goodput objective for the class")
	r.SetHelp("slo_budget_used", "cumulative error-budget consumption; >= 1 means exhausted")
	r.SetHelp("slo_exhausted", "1 when the class's error budget is exhausted")
	r.SetHelp("slo_burn_rate_short", "error-budget burn rate over the short window")
	r.SetHelp("slo_burn_rate_long", "error-budget burn rate over the long window")
	r.SetHelp("slo_p99_us", "observed p99 latency for classes with a p99 objective")
	r.SetHelp("slo_p99_objective_us", "declared p99 latency objective")
	s.mu.Lock()
	classes := append([]*SLOClass(nil), s.classes...)
	s.mu.Unlock()
	for _, c := range classes {
		c := c
		l := L("class", c.cfg.Class)
		r.GaugeFunc("slo_target", func() float64 { return c.cfg.Target }, l)
		r.GaugeFunc("slo_budget_used", func() float64 { return c.Status().BudgetUsed }, l)
		r.GaugeFunc("slo_exhausted", func() float64 {
			if c.Status().Exhausted {
				return 1
			}
			return 0
		}, l)
		r.GaugeFunc("slo_burn_rate_short", func() float64 { return c.Status().BurnShort }, l)
		r.GaugeFunc("slo_burn_rate_long", func() float64 { return c.Status().BurnLong }, l)
		if c.cfg.P99ObjectiveUS > 0 && c.lat != nil {
			r.GaugeFunc("slo_p99_us", func() float64 { return float64(c.lat.Quantile(0.99)) }, l)
			r.GaugeFunc("slo_p99_objective_us", func() float64 { return float64(c.cfg.P99ObjectiveUS) }, l)
		}
	}
}
